//! Regenerate every figure and table of the paper.
//!
//! ```text
//! cargo run -p swp-bench --release --bin experiments -- all
//! cargo run -p swp-bench --release --bin experiments -- fig2 [--full] [--threads N]
//! cargo run -p swp-bench --release --bin experiments -- speedup --threads 4
//! ```
//!
//! Subcommands: `fig2 fig3 fig4 fig5 fig6 fig7 compile-speed loop-size
//! ii-compare solver ablation-order ablation-iisearch ablation-spill
//! speedup all audit chaos portfolio profile bench opt serve-bench
//! serve-chaos serve-smoke`.
//!
//! `opt` (not part of `all`) runs every suite loop (plus the Livermore
//! kernels) through the mid-end pass pipeline, translation-validating
//! every application, and prints the impact table: op counts, RecMII
//! drops, achieved II, and ILP pivot work with the pipeline off vs on.
//! With `-D` a violated `opt_gate` floor (any validation finding, pivots
//! not beating the committed baseline, a missing Livermore RecMII win)
//! exits nonzero, which is how CI enforces that the mid-end keeps paying
//! for itself.
//!
//! `audit` (not part of `all`) compiles every suite loop under both
//! schedulers at full verification and prints a findings table; with `-D`
//! any finding exits nonzero, which is how CI enforces zero findings.
//!
//! `chaos` (not part of `all`) runs every suite down the degradation
//! ladder under each committed fault-injection scenario and prints a
//! containment table; with `-D` any containment violation (an escaped
//! fault, an unrescued loop, an unstructured crash) exits nonzero, which
//! is how CI proves the ladder catches what it claims.
//!
//! `portfolio` (not part of `all`) races ILP, SAT, and the heuristic on
//! every figure suite plus the Livermore kernels under the quick
//! deterministic budgets, printing per-backend win counts, SAT-vs-ILP
//! II parity, and standalone-vs-raced wall clocks; with `-D` a violated
//! floor (SAT below 20/24 Livermore II matches, any determinism
//! violation, a race slower than the slowest backend plus dispatch
//! overhead) exits nonzero, which is how CI holds the third backend and
//! the racing layer to their claims.
//!
//! `solver` (not part of `all`) prints MOST's deterministic node/pivot
//! work counters over the Livermore kernels; with `--gate` it exits
//! nonzero when any committed work floor is violated, which is how CI
//! catches solver-efficiency regressions without trusting wall clocks.
//!
//! `profile` (not part of `all`) runs the traced profile workload and
//! prints the telemetry compile-report; with `--trace FILE` it exports
//! the Chrome `trace_event` JSON (load it at `chrome://tracing` or
//! <https://ui.perfetto.dev>) after schema-validating it. It always runs
//! the dead-metric lint — an `Exact` metric registered but never
//! incremented exits nonzero — which is how CI keeps the registry honest.
//!
//! `bench` (not part of `all`) writes the machine-readable perf snapshot
//! (`--json FILE`, committed as `BENCH_pr5.json` and uploaded as a CI
//! artifact): per-suite cold/warm wall time, per-scheduler compile time,
//! cache hit rate, and the full exact-counter dump.
//!
//! `serve-bench` (not part of `all`) saturates the compile service —
//! cold, warm, and kill-and-restart phases over one persistent store —
//! and times the sharded cache against the single-lock baseline; with
//! `--json FILE` it writes the snapshot committed as `BENCH_pr9.json`.
//!
//! `serve-chaos` (not part of `all`) runs the service-layer fault
//! sweep: corrupt store records, a crash between temp-write and rename,
//! mid-frame client disconnects, adversarial frames, and an overload
//! burst. With `-D` any failed scenario exits nonzero — CI's proof that
//! a bad client, a bad disk, or a bad day cannot take the service down.
//!
//! `serve-smoke` (not part of `all`) is the CI service gate: an
//! 8-client saturation pass that must answer every loop (overload may
//! demote, never reject), followed by a server kill and restart on the
//! same store that must serve warm from disk, bit-identically.
//!
//! Result figures run on a shared parallel [`Driver`] (`--threads N`,
//! default: all cores) whose schedule cache carries compiles across
//! figures; each figure reports the cache hits/misses it contributed.
//! The compile-*time* tables (`compile-speed`, `loop-size`) always
//! compile from scratch — caching a stopwatch would fake the result.
//! `speedup` measures the whole pipeline both ways and prints the
//! sequential and parallel wall-clocks side by side.

use showdown::Driver;
use swp_bench::{
    ablation_ii_search, ablation_order, ablation_spill, audit_with, chaos_rung_usage,
    chaos_scenarios, chaos_with, compile_speed, driver_speedup, fig2_geomean, fig2_with, fig3_with,
    fig4_with, fig5_with, fig6_fig7_with, ii_compare_with, loop_size, opt_gate, opt_with,
    perf_snapshot, portfolio_sweep, portfolio_wall_gate, profile_workload, solver_gate,
    solver_speed, Effort,
};
use swp_heur::PriorityHeuristic;
use swp_machine::Machine;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let effort = if args.iter().any(|a| a == "--full") {
        Effort::Full
    } else {
        Effort::Quick
    };
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(Driver::default_threads);
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let m = Machine::r8000();
    let driver = Driver::new(threads);

    let run = |name: &str| cmd == "all" || cmd == name;
    let report_cache = |driver: &Driver, before: showdown::CacheStats| {
        let after = driver.cache_stats();
        let (hits, misses) = (after.hits - before.hits, after.misses - before.misses);
        let total = hits + misses;
        println!(
            "[cache] {hits} hits / {misses} misses ({:.0}% hit rate)\n",
            100.0 * hits as f64 / (total.max(1)) as f64
        );
    };

    if run("fig2") {
        println!("== Figure 2: SPEC92fp-like suites, pipelining enabled vs disabled ==");
        println!(
            "{:<12} {:>12} {:>12} {:>9}",
            "benchmark", "base(time)", "pipe(time)", "speedup"
        );
        let before = driver.cache_stats();
        let rows = fig2_with(&driver, &m, effort);
        for r in &rows {
            println!(
                "{:<12} {:>12.4} {:>12.4} {:>8.2}x",
                r.name,
                r.baseline_time,
                r.pipelined_time,
                r.speedup()
            );
        }
        println!(
            "geometric mean speedup: {:.2}x (paper: >1.35x)",
            fig2_geomean(&rows)
        );
        report_cache(&driver, before);
    }

    if run("fig3") {
        println!("== Figure 3: single priority-list heuristics (ratio vs all four) ==");
        print!("{:<12}", "benchmark");
        for h in PriorityHeuristic::ALL {
            print!(" {h:>7}");
        }
        println!();
        let before = driver.cache_stats();
        let rows = fig3_with(&driver, &m, effort);
        for r in &rows {
            print!("{:<12}", r.name);
            for v in r.ratios {
                print!(" {v:>7.3}");
            }
            println!();
        }
        // Which heuristics are best somewhere?
        let mut best_somewhere = [false; 4];
        for r in &rows {
            let best = r
                .ratios
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("4 entries");
            best_somewhere[best] = true;
        }
        println!(
            "heuristics that win at least one suite: {:?} (paper: 3 of 4)",
            best_somewhere
        );
        report_cache(&driver, before);
    }

    if run("fig4") {
        println!("== Figure 4: memory-bank heuristics enabled vs disabled ==");
        println!("{:<12} {:>12}", "benchmark", "improvement");
        let before = driver.cache_stats();
        for r in fig4_with(&driver, &m, effort) {
            println!("{:<12} {:>11.3}x", r.name, r.improvement);
        }
        println!("(paper: alvinn and mdljdp2 stand out)");
        report_cache(&driver, before);
    }

    if run("fig5") {
        println!("== Figure 5: ILP-scheduled code relative to MIPSpro ==");
        println!(
            "{:<12} {:>12} {:>15} {:>10}",
            "benchmark", "vs pairing", "vs no-pairing", "fallback%"
        );
        let before = driver.cache_stats();
        let rows = fig5_with(&driver, &m, effort);
        for r in &rows {
            println!(
                "{:<12} {:>11.3}x {:>14.3}x {:>9.0}%",
                r.name,
                r.vs_pairing,
                r.vs_no_pairing,
                100.0 * r.fallback_fraction
            );
        }
        let g1: Vec<f64> = rows.iter().map(|r| r.vs_pairing).collect();
        let g2: Vec<f64> = rows.iter().map(|r| r.vs_no_pairing).collect();
        println!(
            "geomean vs pairing: {:.3} (paper ≈ 0.92); vs no-pairing: {:.3} (paper ≈ 1.0)",
            showdown::geometric_mean(&g1),
            showdown::geometric_mean(&g2)
        );
        report_cache(&driver, before);
    }

    if run("fig6") || run("fig7") {
        let before = driver.cache_stats();
        let rows = fig6_fig7_with(&driver, &m, effort);
        if run("fig6") {
            println!("== Figure 6: Livermore kernels, ILP vs MIPSpro (heur/ILP time) ==");
            println!(
                "{:<4} {:<28} {:>9} {:>9} {:>8}",
                "k", "name", "short", "long", "same II"
            );
            for r in &rows {
                println!(
                    "{:<4} {:<28} {:>9.3} {:>9.3} {:>8}",
                    r.number, r.name, r.relative_short, r.relative_long, r.same_ii
                );
            }
            println!();
        }
        if run("fig7") {
            println!("== Figure 7: static deltas per Livermore loop (MIPSpro − ILP) ==");
            println!(
                "{:<4} {:<28} {:>9} {:>11} {:>9}",
                "k", "name", "Δregs", "Δoverhead", "fellback"
            );
            let mut heur_fewer_regs = 0;
            let mut heur_lower_ovh = 0;
            let mut corr_breaks = 0;
            for r in &rows {
                println!(
                    "{:<4} {:<28} {:>9} {:>11} {:>9}",
                    r.number, r.name, r.reg_delta, r.overhead_delta, r.ilp_fell_back
                );
                if r.reg_delta < 0 {
                    heur_fewer_regs += 1;
                }
                if r.overhead_delta < 0 {
                    heur_lower_ovh += 1;
                }
                if (r.reg_delta < 0) != (r.overhead_delta < 0) {
                    corr_breaks += 1;
                }
            }
            println!(
                "heuristic uses fewer registers on {heur_fewer_regs}/24, lower overhead on \
                 {heur_lower_ovh}/24; reg/overhead disagree on {corr_breaks}/24 \
                 (paper: 15/26, 12/26, 16/26 — no consistent winner)"
            );
        }
        report_cache(&driver, before);
    }

    if run("compile-speed") {
        println!("== §4.7: compile-speed comparison ==");
        let c = compile_speed(&m, effort);
        println!(
            "heuristic: {:?} over {} loops; ILP: {:?}; ratio {:.0}x (paper: 259x)\n",
            c.heuristic,
            c.loops,
            c.ilp,
            c.ratio()
        );
    }

    if run("loop-size") {
        println!("== §5.0: largest schedulable loop under a fixed budget ==");
        let s = loop_size(&m, effort);
        println!(
            "heuristic: {} ops; MOST: {} ops (paper: 116 vs 61)\n",
            s.heuristic_max, s.most_max
        );
    }

    if run("ii-compare") {
        println!("== §5.0: achieved II comparison ==");
        let before = driver.cache_stats();
        let c = ii_compare_with(&driver, &m, effort);
        println!(
            "ILP strictly better: {} (paper: 1); heuristic strictly better: {}; ties: {}; \
             ILP wins surviving a 16x backtrack-budget increase: {} (paper: 0)",
            c.ilp_wins, c.heur_wins, c.ties, c.ilp_wins_after_budget_increase
        );
        report_cache(&driver, before);
    }

    if run("ablation-order") {
        println!("== Ablation: MOST branch priority orders (§3.3 adj. 3) ==");
        let a = ablation_order(&m, effort);
        println!(
            "solved with orders: {}/24 ({} nodes); without: {}/24 ({} nodes)\n",
            a.solved_with, a.nodes_with, a.solved_without, a.nodes_without
        );
    }

    if run("ablation-iisearch") {
        println!("== Ablation: two-phase vs plain binary II search (§2.3) ==");
        let a = ablation_ii_search(&m);
        println!(
            "attempts two-phase: {}; plain binary: {}; identical IIs: {}\n",
            a.attempts_two_phase, a.attempts_binary, a.same_quality
        );
    }

    if run("ablation-spill") {
        println!("== Ablation: exponential spilling (§2.8) ==");
        let a = ablation_spill(&m);
        println!(
            "high-pressure loops pipelined with spilling: {}/{}; without: {}/{}\n",
            a.with_spilling, a.total, a.without_spilling, a.total
        );
    }

    if cmd == "solver" {
        let gate = args.iter().any(|a| a == "--gate");
        println!("== Solver speed: MOST work counters, 24 Livermore kernels ==");
        println!("(deterministic quick budgets, fallback off — counters reproduce exactly)");
        println!(
            "{:<4} {:<28} {:>4} {:>6} {:>8} {:>10} {:>10}",
            "k", "name", "ops", "ii", "nodes", "pivots", "piv/node"
        );
        let s = solver_speed(&m);
        for r in &s.rows {
            let ii = r.ii.map_or_else(|| "-".to_owned(), |ii| ii.to_string());
            println!(
                "{:<4} {:<28} {:>4} {:>6} {:>8} {:>10} {:>10.2}",
                r.number,
                r.name,
                r.ops,
                ii,
                r.nodes,
                r.pivots,
                r.pivots as f64 / r.nodes.max(1) as f64
            );
        }
        println!(
            "solved {}/{}; total {} nodes, {} pivots; {:.2} pivots/node",
            s.solved(),
            s.rows.len(),
            s.total_nodes(),
            s.total_pivots(),
            s.pivots_per_node()
        );
        println!(
            "gate floors: solved >= {}, nodes <= {}, pivots <= {}, pivots/node <= {}",
            solver_gate::MIN_SOLVED,
            solver_gate::MAX_TOTAL_NODES,
            solver_gate::MAX_TOTAL_PIVOTS,
            solver_gate::MAX_PIVOTS_PER_NODE
        );
        match s.gate() {
            Ok(()) => println!("gate: ok"),
            Err(e) => {
                println!("gate: FAIL — {e}");
                if gate {
                    std::process::exit(1);
                }
            }
        }
    }

    if cmd == "opt" {
        let deny = args.iter().any(|a| a == "-D" || a == "--deny");
        println!("== Opt: mid-end pass-pipeline impact, every suite + Livermore ==");
        println!("(quick deterministic budgets — every number reproduces exactly)");
        println!(
            "{:<12} {:>5} {:>7} {:>7} {:>5} {:>7} {:>7} {:>7} {:>6} {:>5} {:>10} {:>10}",
            "suite",
            "loops",
            "ops",
            "ops'",
            "-ops",
            "apps",
            "recmii↓",
            "II off",
            "II'",
            "find",
            "piv off",
            "piv full"
        );
        let impact = opt_with(&driver, &m, effort);
        for r in &impact.rows {
            println!(
                "{:<12} {:>5} {:>7} {:>7} {:>5} {:>7} {:>7} {:>7} {:>6} {:>5} {:>10} {:>10}",
                r.suite,
                r.loops,
                r.ops_before,
                r.ops_after,
                r.ops_removed(),
                r.applications,
                r.recmii_drops,
                r.ii_off,
                r.ii_full,
                r.findings,
                r.pivots_off,
                r.pivots_full
            );
        }
        println!(
            "figure suites: {} ops removed; pivots {} -> {} (baseline {}); findings {}",
            impact.figure_ops_removed(),
            impact.figure_pivots_off(),
            impact.figure_pivots_full(),
            opt_gate::BASELINE_TOTAL_PIVOTS,
            impact.total_findings()
        );
        println!(
            "gate floors: findings == 0, audit errors == 0, full pivots < off and < {} \
             (ceiling {}), ops removed >= {}, livermore recmii drops >= {}, II improved >= {}",
            opt_gate::BASELINE_TOTAL_PIVOTS,
            opt_gate::MAX_FIGURE_PIVOTS_FULL,
            opt_gate::MIN_FIGURE_OPS_REMOVED,
            opt_gate::MIN_LIVERMORE_RECMII_DROPS,
            opt_gate::MIN_LIVERMORE_II_IMPROVED
        );
        match impact.gate() {
            Ok(()) => println!("gate: ok"),
            Err(e) => {
                println!("gate: FAIL — {e}");
                if deny {
                    std::process::exit(1);
                }
            }
        }
    }

    if cmd == "audit" {
        let deny = args.iter().any(|a| a == "-D" || a == "--deny");
        println!("== Audit: translation validation, every suite x both schedulers ==");
        println!(
            "{:<12} {:<10} {:>6} {:>7} {:>9} {:>6}",
            "suite", "scheduler", "loops", "errors", "warnings", "notes"
        );
        let rows = audit_with(&driver, &m, effort);
        let mut total = 0usize;
        for r in &rows {
            println!(
                "{:<12} {:<10} {:>6} {:>7} {:>9} {:>6}",
                r.audit.name,
                r.scheduler,
                r.audit.loops.len(),
                r.count(showdown::Severity::Error),
                r.count(showdown::Severity::Warning),
                r.count(showdown::Severity::Note)
            );
            for l in &r.audit.loops {
                if !l.report.findings.is_empty() {
                    println!("  {}::{} (II={}):", r.audit.name, l.loop_name, l.ii);
                    for line in l.report.render_human().lines() {
                        println!("    {line}");
                    }
                }
            }
            total += r.findings();
        }
        println!("total findings: {total}");
        if deny && total > 0 {
            std::process::exit(1);
        }
    }

    if cmd == "chaos" {
        let deny = args.iter().any(|a| a == "-D" || a == "--deny");
        // Injected panics are the point; keep their backtraces out of the log.
        showdown::hush_injected_panics();
        println!("== Chaos: fault injection vs the degradation ladder, every suite ==");
        println!(
            "{:<16} {:>6} {:>5} {:>5} {:>5} {:>5} {:>5} {:>6} {:>8} {:>11}",
            "scenario", "loops", "r0", "r1", "r2", "r3", "r4", "quar", "escapes", "violations"
        );
        let rows = chaos_with(&driver, &m, effort);
        let mut total_violations = 0usize;
        for sc in &chaos_scenarios() {
            let (mut loops, mut quar, mut escapes, mut violations) = (0usize, 0, 0, 0);
            let mut usage = [0usize; 5];
            for r in rows.iter().filter(|r| r.scenario == sc.name) {
                loops += r.suite.loops.len();
                for (u, n) in usage.iter_mut().zip(r.suite.rung_usage()) {
                    *u += n;
                }
                quar += r.suite.quarantined();
                escapes += r.escapes();
                violations += r.violations();
            }
            total_violations += violations;
            println!(
                "{:<16} {:>6} {:>5} {:>5} {:>5} {:>5} {:>5} {:>6} {:>8} {:>11}",
                sc.name,
                loops,
                usage[0],
                usage[1],
                usage[2],
                usage[3],
                usage[4],
                quar,
                escapes,
                violations
            );
        }
        for r in rows.iter().filter(|r| r.violations() > 0) {
            println!("  VIOLATION in {} under {}:", r.suite.name, r.scenario);
            for l in &r.suite.loops {
                let bad = match &l.outcome {
                    Ok(s) => !s.clean,
                    Err(_) => !r.expect_quarantine,
                };
                if bad || l.escapes() > 0 {
                    println!(
                        "    {}: {}",
                        l.loop_name,
                        showdown::render_attempts(l.attempts())
                    );
                }
            }
        }
        let usage = chaos_rung_usage(&rows);
        println!(
            "control rung usage (no faults): ilp={} sat={} heuristic={} escalated={} sequential={}",
            usage[0], usage[1], usage[2], usage[3], usage[4]
        );
        println!("total containment violations: {total_violations}");
        if deny && total_violations > 0 {
            std::process::exit(1);
        }
    }

    if cmd == "portfolio" {
        let deny = args.iter().any(|a| a == "-D" || a == "--deny");
        println!("== Portfolio: ILP vs SAT vs heuristic, raced per loop ==");
        println!(
            "{:<12} {:>5} {:>4} {:>4} {:>4} {:>4} {:>7} {:>6} {:>9} {:>9} {:>9} {:>9}",
            "suite",
            "loops",
            "ilp",
            "sat",
            "heur",
            "none",
            "sat=ilp",
            "viols",
            "race(ms)",
            "ilp(ms)",
            "sat(ms)",
            "heur(ms)"
        );
        let rows = portfolio_sweep(&m);
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        for r in &rows {
            println!(
                "{:<12} {:>5} {:>4} {:>4} {:>4} {:>4} {:>3}/{:<3} {:>6} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
                r.name,
                r.loops,
                r.ilp_wins,
                r.sat_wins,
                r.heur_wins,
                r.no_winner,
                r.sat_ii_matches,
                r.both_optimal,
                r.determinism_violations,
                ms(r.portfolio_wall),
                ms(r.ilp_wall),
                ms(r.sat_wall),
                ms(r.heur_wall)
            );
        }
        let violations: usize = rows.iter().map(|r| r.determinism_violations).sum();
        let livermore = rows
            .iter()
            .find(|r| r.name == "livermore")
            .expect("sweep always includes the kernels");
        let wall_ok = portfolio_wall_gate(&rows);
        println!(
            "gates: livermore sat=ilp {}/{} (floor 20), determinism violations {violations} \
             (floor 0), wall-vs-slowest-backend {}",
            livermore.sat_ii_matches,
            livermore.both_optimal,
            if wall_ok { "ok" } else { "FAIL" }
        );
        if deny && (livermore.sat_ii_matches < 20 || violations > 0 || !wall_ok) {
            std::process::exit(1);
        }
    }

    if cmd == "profile" {
        let trace_path = args
            .iter()
            .position(|a| a == "--trace")
            .and_then(|i| args.get(i + 1));
        println!("== Profile: traced telemetry over the profile workload ==");
        let report = profile_workload(&m, threads);
        print!("{}", report.telemetry.render_report());
        println!(
            "compiles issued: {}; cache: {} hits / {} misses; spans recorded: {}",
            report.loops,
            report.cache.hits,
            report.cache.misses,
            report.telemetry.span_count()
        );
        if let Some(path) = trace_path {
            let json = report.telemetry.chrome_trace_json();
            match swp_obs::validate_chrome_trace(&json) {
                Ok(events) => println!("trace: {events} events, schema ok"),
                Err(e) => {
                    eprintln!("trace: INVALID chrome trace — {e}");
                    std::process::exit(1);
                }
            }
            swp_serve::write_atomic(std::path::Path::new(path), json.as_bytes())
                .unwrap_or_else(|e| panic!("writing trace to {path}: {e}"));
            println!("trace written to {path}");
        }
        let dead = report.telemetry.dead_exact_metrics();
        if dead.is_empty() {
            println!("dead-metric lint: ok (every Exact metric incremented)");
        } else {
            println!("dead-metric lint: FAIL — registered but never incremented: {dead:?}");
            std::process::exit(1);
        }
    }

    if cmd == "bench" {
        let json_path = args
            .iter()
            .position(|a| a == "--json")
            .and_then(|i| args.get(i + 1));
        println!("== Bench snapshot: per-suite wall time, per-scheduler compile time ==");
        let json = perf_snapshot(&m, threads, 5);
        let parsed = swp_obs::parse_json(&json).expect("snapshot serializer emits valid JSON");
        let suites = parsed
            .get("suites")
            .and_then(swp_obs::JsonValue::as_array)
            .map_or(0, <[swp_obs::JsonValue]>::len);
        let hit_rate = parsed
            .get("cache")
            .and_then(|c| c.get("hit_rate"))
            .and_then(swp_obs::JsonValue::as_number)
            .unwrap_or(0.0);
        let pivots = parsed
            .get("total_pivots")
            .and_then(swp_obs::JsonValue::as_number)
            .unwrap_or(0.0);
        println!(
            "{suites} suite x scheduler rows; cache hit rate {:.0}%; {pivots} total pivots",
            100.0 * hit_rate
        );
        if let Some(path) = json_path {
            swp_serve::write_atomic(std::path::Path::new(path), json.as_bytes())
                .unwrap_or_else(|e| panic!("writing snapshot to {path}: {e}"));
            println!("snapshot written to {path}");
        }
    }

    if cmd == "serve-chaos" {
        let deny = args.iter().any(|a| a == "-D" || a == "--deny");
        println!("== Serve chaos: service-layer fault injection ==");
        println!("{:<28} {:>6}  detail", "scenario", "pass");
        let root = serve_root("chaos");
        let reports = swp_serve::service_chaos(&m, &root);
        let mut failed = 0usize;
        for r in &reports {
            println!(
                "{:<28} {:>6}  {}",
                r.scenario,
                if r.passed { "ok" } else { "FAIL" },
                r.detail
            );
            failed += usize::from(!r.passed);
        }
        println!("scenarios failed: {failed}/{}", reports.len());
        let _ = std::fs::remove_dir_all(&root);
        if deny && failed > 0 {
            std::process::exit(1);
        }
    }

    if cmd == "serve-bench" {
        let json_path = args
            .iter()
            .position(|a| a == "--json")
            .and_then(|i| args.get(i + 1));
        let clients = args
            .iter()
            .position(|a| a == "--clients")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(8);
        println!("== Serve bench: saturation (cold/warm/restart) + shard compare ==");
        let root = serve_root("bench");
        let sat = swp_serve::saturate(&m, clients, &root)
            .unwrap_or_else(|e| panic!("saturation bench: {e}"));
        let _ = std::fs::remove_dir_all(&root);
        print_saturation(&sat);
        // Enough rounds that the all-hit path (where lock contention
        // lives) dominates the one compile round.
        let shards = swp_serve::shard_compare(&m, 8, 64);
        println!(
            "shard compare: {} threads x {} rounds — single-lock {}us, sharded {}us ({:.2}x)",
            shards.threads,
            shards.rounds,
            shards.single_lock_us,
            shards.sharded_us,
            shards.speedup()
        );
        if let Some(path) = json_path {
            let json = serve_bench_json(&sat, &shards);
            swp_obs::parse_json(&json).expect("serve-bench serializer emits valid JSON");
            swp_serve::write_atomic(std::path::Path::new(path), json.as_bytes())
                .unwrap_or_else(|e| panic!("writing serve snapshot to {path}: {e}"));
            println!("snapshot written to {path}");
        }
    }

    if cmd == "serve-smoke" {
        let deny = args.iter().any(|a| a == "-D" || a == "--deny");
        println!("== Serve smoke: 8-client saturation + kill/restart warm-hit gate ==");
        let root = serve_root("smoke");
        let sat =
            swp_serve::saturate(&m, 8, &root).unwrap_or_else(|e| panic!("saturation smoke: {e}"));
        let _ = std::fs::remove_dir_all(&root);
        print_saturation(&sat);
        let mut failures = Vec::new();
        if sat.errors > 0 {
            failures.push(format!(
                "{} error replies (overload must demote, never reject)",
                sat.errors
            ));
        }
        if sat.restart_hit_rate() <= 0.0 {
            failures.push("restart phase served zero disk hits".to_owned());
        }
        if failures.is_empty() {
            println!("gate: ok");
        } else {
            for f in &failures {
                println!("gate: FAIL — {f}");
            }
            if deny {
                std::process::exit(1);
            }
        }
    }

    if cmd == "speedup" {
        println!("== Parallel driver + schedule cache vs sequential reference ==");
        println!("({} threads; figure set: fig2–fig7 + ii-compare)", threads);
        println!(
            "{:<12} {:>14} {:>14} {:>9} {:>7} {:>8} {:>9}",
            "figure", "sequential", "parallel", "speedup", "hits", "misses", "hit rate"
        );
        let rows = driver_speedup(&m, effort, threads);
        let mut seq_total = 0.0;
        let mut par_total = 0.0;
        for r in &rows {
            seq_total += r.sequential.as_secs_f64();
            par_total += r.parallel.as_secs_f64();
            println!(
                "{:<12} {:>13.3}s {:>13.3}s {:>8.2}x {:>7} {:>8} {:>8.0}%",
                r.figure,
                r.sequential.as_secs_f64(),
                r.parallel.as_secs_f64(),
                r.speedup(),
                r.hits,
                r.misses,
                100.0 * r.hit_rate()
            );
        }
        println!(
            "end-to-end: sequential {:.3}s, parallel+cached {:.3}s — {:.2}x speedup",
            seq_total,
            par_total,
            seq_total / par_total.max(1e-9)
        );
    }
}

/// A private scratch directory for service runs (store + socket debris).
fn serve_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("swp-exp-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn print_saturation(sat: &swp_serve::SaturationReport) {
    println!(
        "{} clients x {} loops/phase; error replies: {}",
        sat.clients, sat.loops_per_phase, sat.errors
    );
    println!(
        "{:<8} {:>8} {:>10} {:>10}",
        "phase", "batches", "p50(us)", "p99(us)"
    );
    for (name, p) in [
        ("cold", &sat.cold),
        ("warm", &sat.warm),
        ("restart", &sat.restart),
    ] {
        println!(
            "{:<8} {:>8} {:>10} {:>10}",
            name, p.batches, p.p50_us, p.p99_us
        );
    }
    println!(
        "cold server: {} admitted, {} demoted, {} persisted; restart server: {} disk hits / {} \
         admitted ({:.0}% disk hit rate), {} recompiles",
        sat.cold_stats.admitted,
        sat.cold_stats.demoted,
        sat.cold_stats.store.persisted,
        sat.restart_stats.store.hits,
        sat.restart_stats.admitted,
        100.0 * sat.restart_hit_rate(),
        sat.restart_stats.cache.misses
    );
}

fn phase_json(w: &mut swp_obs::JsonWriter, key: &str, p: &swp_serve::PhaseLatency) {
    w.key(key).begin_object();
    w.key("batches").uint(p.batches as u64);
    w.key("p50_us").uint(p.p50_us);
    w.key("p99_us").uint(p.p99_us);
    w.end_object();
}

fn serve_stats_json(w: &mut swp_obs::JsonWriter, key: &str, s: &swp_serve::ServeStats) {
    w.key(key).begin_object();
    w.key("admitted").uint(s.admitted);
    w.key("demoted").uint(s.demoted);
    w.key("inflight_waits").uint(s.inflight_waits);
    w.key("cache_hits").uint(s.cache.hits);
    w.key("cache_misses").uint(s.cache.misses);
    w.key("store_hits").uint(s.store.hits);
    w.key("store_misses").uint(s.store.misses);
    w.key("store_corrupt_recovered")
        .uint(s.store.corrupt_recovered);
    w.key("store_persisted").uint(s.store.persisted);
    w.end_object();
}

/// Render the `swp-serve-bench/1` snapshot committed as `BENCH_pr9.json`.
fn serve_bench_json(sat: &swp_serve::SaturationReport, shards: &swp_serve::ShardCompare) -> String {
    let mut w = swp_obs::JsonWriter::new();
    w.begin_object();
    w.key("schema").string("swp-serve-bench/1");
    w.key("saturation").begin_object();
    w.key("clients").uint(sat.clients as u64);
    w.key("loops_per_phase").uint(sat.loops_per_phase as u64);
    w.key("errors").uint(sat.errors as u64);
    phase_json(&mut w, "cold", &sat.cold);
    phase_json(&mut w, "warm", &sat.warm);
    phase_json(&mut w, "restart", &sat.restart);
    serve_stats_json(&mut w, "cold_stats", &sat.cold_stats);
    serve_stats_json(&mut w, "restart_stats", &sat.restart_stats);
    w.key("restart_disk_hit_rate").float(sat.restart_hit_rate());
    w.end_object();
    w.key("shard_compare").begin_object();
    w.key("threads").uint(shards.threads as u64);
    w.key("rounds").uint(shards.rounds as u64);
    w.key("single_lock_us").uint(shards.single_lock_us);
    w.key("sharded_us").uint(shards.sharded_us);
    w.key("speedup").float(shards.speedup());
    w.end_object();
    w.end_object();
    w.finish()
}
