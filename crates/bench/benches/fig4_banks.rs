//! Criterion bench for Figure 4: memory-bank pairing on vs off
//! (simulated stall behaviour of the alvinn-like suite).

use criterion::{criterion_group, criterion_main, Criterion};
use showdown::{run_suite, SchedulerChoice};
use swp_heur::HeurOptions;
use swp_machine::Machine;

fn bench(c: &mut Criterion) {
    let m = Machine::r8000();
    let suite = swp_kernels::spec_suites()
        .into_iter()
        .find(|s| s.name == "alvinn")
        .expect("alvinn exists");
    let mut g = c.benchmark_group("fig4");
    g.bench_function("banks_on", |b| {
        b.iter(|| {
            run_suite(&suite, &m, &SchedulerChoice::Heuristic)
                .expect("ok")
                .time
        })
    });
    let off = HeurOptions {
        bank_pairing: false,
        explore_stalls: false,
        ..HeurOptions::default()
    };
    g.bench_function("banks_off", |b| {
        b.iter(|| {
            run_suite(&suite, &m, &SchedulerChoice::HeuristicWith(off.clone()))
                .expect("ok")
                .time
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
