//! Criterion bench for §4.7: scheduler compile speed, heuristic vs ILP.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use swp_heur::HeurOptions;
use swp_machine::Machine;
use swp_most::MostOptions;

fn bench(c: &mut Criterion) {
    let m = Machine::r8000();
    let saxpyish = swp_kernels::spec_suites()
        .into_iter()
        .find(|s| s.name == "ear")
        .expect("ear exists");
    let lp = saxpyish.loops[0].body.clone();
    let mut g = c.benchmark_group("compile_speed");
    g.bench_function("heuristic", |b| {
        b.iter(|| {
            swp_heur::pipeline(&lp, &m, &HeurOptions::default())
                .expect("ok")
                .ii()
        })
    });
    let most = MostOptions {
        node_limit: 50_000,
        time_limit: Some(Duration::from_secs(5)),
        fallback: false,
        ..MostOptions::default()
    };
    g.bench_function("ilp", |b| {
        b.iter(|| swp_most::pipeline_most(&lp, &m, &most).expect("ok").ii())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
