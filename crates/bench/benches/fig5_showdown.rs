//! Criterion bench for Figure 5: ILP vs heuristic scheduling of one
//! Livermore kernel (the full figure is printed by the experiments
//! binary).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use swp_heur::HeurOptions;
use swp_machine::Machine;
use swp_most::MostOptions;

fn bench(c: &mut Criterion) {
    let m = Machine::r8000();
    let k3 = swp_kernels::livermore()
        .into_iter()
        .find(|k| k.number == 3)
        .expect("k3");
    let mut g = c.benchmark_group("fig5");
    g.bench_function("heuristic_k3", |b| {
        b.iter(|| {
            swp_heur::pipeline(&k3.body, &m, &HeurOptions::default())
                .expect("ok")
                .ii()
        })
    });
    let most = MostOptions {
        node_limit: 20_000,
        time_limit: Some(Duration::from_secs(2)),
        fallback: false,
        ..MostOptions::default()
    };
    g.bench_function("most_k3", |b| {
        b.iter(|| {
            swp_most::pipeline_most(&k3.body, &m, &most)
                .expect("ok")
                .ii()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
