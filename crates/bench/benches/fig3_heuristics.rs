//! Criterion bench for Figure 3: single priority heuristics.

use criterion::{criterion_group, criterion_main, Criterion};
use swp_heur::{pipeline, HeurOptions, PriorityHeuristic};
use swp_machine::Machine;

fn bench(c: &mut Criterion) {
    let m = Machine::r8000();
    let kernels = swp_kernels::livermore();
    let mut g = c.benchmark_group("fig3");
    for h in PriorityHeuristic::ALL {
        let opts = HeurOptions {
            heuristics: vec![h],
            ..HeurOptions::default()
        };
        g.bench_function(format!("livermore_{h}"), |b| {
            b.iter(|| {
                kernels
                    .iter()
                    .filter(|k| pipeline(&k.body, &m, &opts).is_ok())
                    .count()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
