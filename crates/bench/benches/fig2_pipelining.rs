//! Criterion bench for Figure 2: pipelining enabled vs disabled.
//!
//! Benchmarks the *compile+simulate* pipeline for a representative
//! memory-bound suite in both configurations; the experiments binary
//! prints the full 14-suite figure.

use criterion::{criterion_group, criterion_main, Criterion};
use showdown::{run_suite, run_suite_baseline, SchedulerChoice};
use swp_machine::Machine;

fn bench(c: &mut Criterion) {
    let m = Machine::r8000();
    let suite = swp_kernels::spec_suites()
        .into_iter()
        .find(|s| s.name == "alvinn")
        .expect("alvinn exists");
    let mut g = c.benchmark_group("fig2");
    g.bench_function("alvinn_pipelined", |b| {
        b.iter(|| {
            run_suite(&suite, &m, &SchedulerChoice::Heuristic)
                .expect("pipelines")
                .time
        })
    });
    g.bench_function("alvinn_baseline", |b| {
        b.iter(|| run_suite_baseline(&suite, &m).time)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
