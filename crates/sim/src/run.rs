//! Cycle-level execution with the banked memory system.

use swp_codegen::{BaselineLoop, PipelinedLoop};
use swp_ir::{Loop, MemAccess, Op};
use swp_machine::{Bank, Bellows, Machine};

/// Result of a timed simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimResult {
    /// Total cycles including memory stalls and modeled overheads.
    pub cycles: u64,
    /// Cycles lost to memory-bank (bellows) stalls.
    pub stall_cycles: u64,
    /// Memory references issued.
    pub mem_refs: u64,
    /// Iterations executed.
    pub iterations: u64,
}

impl SimResult {
    /// Average cycles per iteration.
    pub fn cycles_per_iter(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.cycles as f64 / self.iterations as f64
        }
    }
}

/// Bank of a reference at a given iteration: affine addresses compute it
/// exactly; indirect references get a deterministic pseudo-random bank
/// (the compile-time-unknowable pattern of §4.3's mdljdp2).
fn bank_at(lp: &Loop, op: &Op, mem: &MemAccess, iteration: u64, machine: &Machine) -> Bank {
    let model = machine.bank_model().expect("banked machine");
    if mem.indirect {
        // SplitMix64-style hash of (op, iteration) for a reproducible
        // "unknown" pattern.
        let mut z = iteration
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(op.id.0) << 32);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        if (z >> 33) & 1 == 0 {
            Bank::Even
        } else {
            Bank::Odd
        }
    } else {
        let base = lp.array(mem.array).base_align as i64;
        model.bank_of((base + mem.addr_at(iteration)).rem_euclid(1 << 40) as u64)
    }
}

/// Simulate `n` iterations of a pipelined loop on `machine`.
///
/// Issue times come from the modulo schedule (iteration `i`'s instance of
/// an op issues at `i·II + time(op)` plus accumulated stalls); each cycle's
/// memory references drive the bellows model, whose overflow stalls the
/// whole in-order pipe.
pub fn simulate(code: &PipelinedLoop, n: u64, machine: &Machine) -> SimResult {
    let lp = code.body();
    let schedule = code.schedule();
    let ii = i64::from(code.ii());
    let span = schedule.span();
    let mem_ops: Vec<&Op> = lp.mem_ops().collect();
    let mem_refs = mem_ops.len() as u64 * n;

    let static_cycles = code.static_cycles(n);
    if n == 0 {
        return SimResult {
            cycles: 0,
            stall_cycles: 0,
            mem_refs: 0,
            iterations: 0,
        };
    }
    let mut stalls = 0u64;
    if machine.bank_model().is_some() && !mem_ops.is_empty() {
        let mut bellows = Bellows::new();
        let last_cycle = (n as i64 - 1) * ii + span;
        let mut refs: Vec<Bank> = Vec::with_capacity(4);
        for c in 0..=last_cycle {
            refs.clear();
            for op in &mem_ops {
                let t = schedule.time(op.id);
                if c < t {
                    continue;
                }
                let diff = c - t;
                if diff % ii == 0 {
                    let i = (diff / ii) as u64;
                    if i < n {
                        let mem = op.mem.expect("mem op");
                        refs.push(bank_at(lp, op, &mem, i, machine));
                    }
                }
            }
            stalls += u64::from(bellows.cycle(&refs));
        }
    }
    SimResult {
        cycles: static_cycles + stalls,
        stall_cycles: stalls,
        mem_refs,
        iterations: n,
    }
}

/// Simulate `n` iterations of the non-pipelined baseline (sequential
/// iterations of the list schedule).
pub fn simulate_baseline(base: &BaselineLoop, n: u64, machine: &Machine) -> SimResult {
    let lp = base.body();
    let len = base.cycles_per_iter() as i64;
    let mem_ops: Vec<&Op> = lp.mem_ops().collect();
    let mem_refs = mem_ops.len() as u64 * n;
    let static_cycles = base.static_cycles(n);
    if n == 0 {
        return SimResult {
            cycles: 0,
            stall_cycles: 0,
            mem_refs: 0,
            iterations: 0,
        };
    }
    let mut stalls = 0u64;
    if machine.bank_model().is_some() && !mem_ops.is_empty() {
        let mut bellows = Bellows::new();
        let mut refs: Vec<Bank> = Vec::with_capacity(4);
        for i in 0..n {
            for c in 0..len {
                refs.clear();
                for op in &mem_ops {
                    if base.time(op.id) == c {
                        let mem = op.mem.expect("mem op");
                        refs.push(bank_at(lp, op, &mem, i, machine));
                    }
                }
                stalls += u64::from(bellows.cycle(&refs));
            }
        }
    }
    SimResult {
        cycles: static_cycles + stalls,
        stall_cycles: stalls,
        mem_refs,
        iterations: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_heur::{pipeline, HeurOptions};
    use swp_ir::{Ddg, LoopBuilder};

    fn compile(lp: &swp_ir::Loop, m: &Machine, opts: &HeurOptions) -> PipelinedLoop {
        let p = pipeline(lp, m, opts).expect("pipelines");
        PipelinedLoop::expand(&p.body, &p.schedule, &p.allocation)
    }

    #[test]
    fn conflict_free_loop_has_no_stalls() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array_aligned("y", 8, 8); // opposite bank phase
        let v = b.load(x, 0, 16);
        let w = b.load(y, 0, 16);
        let s = b.fadd(v, w);
        b.store(x, 800000, 16, s);
        let lp = b.finish();
        let code = compile(&lp, &m, &HeurOptions::default());
        let r = simulate(&code, 200, &m);
        // x even, y odd each iteration; the pairing heuristic should pair
        // them or spread them; either way stalls stay minimal.
        assert!(r.stall_cycles <= 2, "stalls {}", r.stall_cycles);
        assert_eq!(r.cycles - r.stall_cycles, code.static_cycles(200));
    }

    #[test]
    fn same_bank_pairs_stall_half_speed() {
        // Force a same-bank double-issue with pairing disabled: two loads
        // of the same array, 16 bytes apart (same bank every iteration).
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 16);
        let w = b.load(x, 16, 16);
        let s = b.fadd(v, w);
        b.store(x, 1600000, 16, s);
        let lp = b.finish();
        let ddg = Ddg::build(&lp, &m);
        // Hand-build a schedule with both loads in the same row.
        let times = vec![0, 0, 4, 9]; // store in the odd row, loads paired in row 0
        let s2 = swp_ir::Schedule::new(2, times);
        assert_eq!(s2.validate(&lp, &ddg, &m), Ok(()));
        let swp_regalloc::AllocOutcome::Allocated(a) = swp_regalloc::allocate(&lp, &s2, &m) else {
            unreachable!("tiny loop fits in the register file")
        };
        let code = PipelinedLoop::expand(&lp, &s2, &a);
        let r = simulate(&code, 1000, &m);
        // Two same-bank refs every II=2 cycles: ~1 stall per iter
        // once the bellows is saturated.
        assert!(
            r.stall_cycles > 800,
            "expected heavy stalling, got {}",
            r.stall_cycles
        );
    }

    #[test]
    fn pairing_heuristic_avoids_stalls_vs_disabled() {
        // The Figure 4 effect in miniature: a memory-bound loop with
        // known-opposite pairs available.
        let m = Machine::r8000();
        let mk = || {
            let mut b = LoopBuilder::new("alvinnish");
            let u = b.array("u", 4);
            let v = b.array("v", 4);
            let s = b.carried_f("s");
            let a0 = b.load(v, 0, 16);
            let a1 = b.load(v, 8, 16);
            let b0 = b.load(u, 0, 16);
            let b1 = b.load(u, 8, 16);
            let m0 = b.fmadd(a0, b0, s.value());
            let m1 = b.fmadd(a1, b1, m0);
            b.close(s, m1, 1);
            b.finish()
        };
        let on = compile(&mk(), &m, &HeurOptions::default());
        let off = compile(
            &mk(),
            &m,
            &HeurOptions {
                bank_pairing: false,
                explore_stalls: false,
                ..HeurOptions::default()
            },
        );
        let r_on = simulate(&on, 1000, &m);
        let r_off = simulate(&off, 1000, &m);
        assert!(
            r_on.stall_cycles <= r_off.stall_cycles,
            "pairing on: {} stalls, off: {} stalls",
            r_on.stall_cycles,
            r_off.stall_cycles
        );
    }

    #[test]
    fn baseline_simulation_counts_refs() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        b.store(x, 800000, 8, v);
        let lp = b.finish();
        let ddg = Ddg::build(&lp, &m);
        let base = swp_codegen::list_schedule(&lp, &ddg, &m);
        let r = simulate_baseline(&base, 50, &m);
        assert_eq!(r.mem_refs, 100);
        assert_eq!(r.iterations, 50);
        assert!(r.cycles >= base.static_cycles(50));
    }

    #[test]
    fn unbanked_machine_never_stalls() {
        let m = Machine::r8000_unbanked();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 16);
        let w = b.load(x, 16, 16);
        let s = b.fadd(v, w);
        b.store(x, 1600000, 16, s);
        let lp = b.finish();
        let code = compile(&lp, &m, &HeurOptions::default());
        let r = simulate(&code, 500, &m);
        assert_eq!(r.stall_cycles, 0);
    }
}
