//! Cycle-accurate simulation of the R8000-like machine, plus a functional
//! interpreter for correctness cross-checks.
//!
//! The only dynamic effect the paper's comparisons hinge on is the banked
//! memory system (§2.9, §4.5): statically scheduled code never stalls on an
//! in-order machine *except* when two same-cycle references hit the same
//! cache bank and overflow the one-entry bellows queue. [`simulate`] models
//! exactly that, cycle by cycle, for both pipelined and baseline loops.
//!
//! [`interp`] executes loops *functionally* — sequentially, or in pipelined
//! issue order — so tests can verify that scheduling, register allocation,
//! spilling, unrolling, and if-conversion preserve semantics.
//!
//! # Examples
//!
//! ```
//! use swp_heur::{pipeline, HeurOptions};
//! use swp_ir::LoopBuilder;
//! use swp_machine::Machine;
//! use swp_codegen::PipelinedLoop;
//! use swp_sim::simulate;
//!
//! let m = Machine::r8000();
//! let mut b = LoopBuilder::new("scale");
//! let a = b.invariant_f("a");
//! let x = b.array("x", 8);
//! let v = b.load(x, 0, 8);
//! let w = b.fmul(a, v);
//! b.store(x, 0, 8, w);
//! let lp = b.finish();
//! let p = pipeline(&lp, &m, &HeurOptions::default())?;
//! let code = PipelinedLoop::expand(&p.body, &p.schedule, &p.allocation);
//! let r = simulate(&code, 100, &m);
//! assert_eq!(r.iterations, 100);
//! assert!(r.cycles >= code.static_cycles(100));
//! # Ok::<(), swp_heur::PipelineError>(())
//! ```

pub mod interp;
mod run;

pub use interp::{check_loops_equivalent, SimError};
pub use run::{simulate, simulate_baseline, SimResult};

#[cfg(test)]
mod tests {
    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::SimResult>();
    }
}
