//! Functional interpretation of loops — sequential reference semantics and
//! pipelined-issue-order semantics.
//!
//! Two executions of the same loop must produce the same memory image:
//! sequential order (the reference), and the order the software pipeline
//! actually issues instances in. Comparing them end-to-end validates the
//! scheduler's dependence handling, the spill transformation, unrolling,
//! and if-conversion.

use std::collections::HashMap;
use swp_codegen::PipelinedLoop;
use swp_ir::{ArrayId, Loop, Op, OpId, Sem, ValueId};

/// A sparse byte-addressed memory image, one `f64` per element address.
/// Reads of untouched cells return a deterministic seed so every loop has
/// well-defined inputs without explicit initialization.
#[derive(Debug, Clone, Default)]
pub struct MemoryImage {
    cells: HashMap<(u32, i64), f64>,
}

impl MemoryImage {
    /// An empty (all-seed) image.
    pub fn new() -> MemoryImage {
        MemoryImage::default()
    }

    /// Read a cell (seeded if never written).
    pub fn read(&self, array: ArrayId, addr: i64) -> f64 {
        *self
            .cells
            .get(&(array.0, addr))
            .unwrap_or(&seed_mem(array, addr))
    }

    /// Write a cell.
    pub fn write(&mut self, array: ArrayId, addr: i64, value: f64) {
        self.cells.insert((array.0, addr), value);
    }

    /// Cells written during execution, sorted for comparison.
    pub fn written(&self) -> Vec<((u32, i64), f64)> {
        let mut v: Vec<_> = self.cells.iter().map(|(&k, &val)| (k, val)).collect();
        v.sort_by_key(|&(k, _)| k);
        v
    }

    /// Whether two images are bit-identical on every written cell (NaN
    /// matches NaN). Use for transforms that must be exact.
    pub fn bits_eq(&self, other: &MemoryImage) -> bool {
        let a = self.written();
        let b = other.written();
        a.len() == b.len()
            && a.iter()
                .zip(&b)
                .all(|((ka, va), (kb, vb))| ka == kb && va.to_bits() == vb.to_bits())
    }

    /// Whether two images agree on every written cell within `tol`
    /// (relative); cells written by only one image count as disagreement.
    pub fn approx_eq(&self, other: &MemoryImage, tol: f64) -> bool {
        let a = self.written();
        let b = other.written();
        if a.len() != b.len() {
            return false;
        }
        a.iter().zip(&b).all(|((ka, va), (kb, vb))| {
            ka == kb && {
                // Bit-identical (covers ±inf) and NaN-vs-NaN both count as
                // agreement; overflowing workloads legitimately produce them.
                va.to_bits() == vb.to_bits() || {
                    let scale = va.abs().max(vb.abs()).max(1.0);
                    (va - vb).abs() <= tol * scale
                }
            }
        })
    }
}

/// Why a functional execution could not complete. Rendered in the same
/// `CODE: message` shape as the `swp-verify` diagnostics engine so audit
/// and simulation failures read identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// An instance consumed a value whose defining instance had not yet
    /// executed — the schedule (or the expansion) broke a flow dependence.
    UseBeforeDef {
        /// The op whose operand was unavailable.
        consumer: OpId,
        /// The op that should have defined the value.
        def: OpId,
        /// Iteration of the missing defining instance.
        iteration: i64,
    },
}

impl SimError {
    /// Stable lint code, in the `swp-verify` namespace (X = execution).
    pub fn lint_code(&self) -> &'static str {
        match self {
            SimError::UseBeforeDef { .. } => "SWP-X001",
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: ", self.lint_code())?;
        match self {
            SimError::UseBeforeDef {
                consumer,
                def,
                iteration,
            } => write!(
                f,
                "op {} uses the value of op {} for iteration {iteration} \
                 before that instance has executed",
                consumer.0, def.0
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Deterministic seed for a memory cell: small, nonzero, array- and
/// address-dependent.
fn seed_mem(array: ArrayId, addr: i64) -> f64 {
    let h = (i64::from(array.0) * 1_000_003 + addr) % 97;
    1.0 + (h as f64) / 37.0
}

/// Deterministic seed for an invariant value.
fn seed_invariant(v: ValueId) -> f64 {
    1.5 + f64::from(v.0 % 11) / 7.0
}

/// Value of an invariant during execution: its literal when the IR knows
/// one (so constant folding can be validated bit-exactly), the id-derived
/// seed otherwise.
fn invariant_value(lp: &Loop, v: ValueId) -> f64 {
    lp.value(v)
        .literal_f64()
        .unwrap_or_else(|| seed_invariant(v))
}

/// Deterministic seed for a loop-carried value's pre-loop instances.
///
/// Deliberately value-independent: transforms that merge or replicate
/// values (CSE, unrolling, spilling) change value identities without
/// changing which pre-loop computation would have produced them, so
/// identity-dependent seeds would flag spurious divergence.
fn seed_init(v: ValueId) -> f64 {
    let _ = v;
    0.4375
}

fn elem_addr(op: &Op, iteration: i64, idx_value: Option<f64>) -> (ArrayId, i64) {
    let mem = op.mem.expect("memory op");
    if mem.indirect {
        let idx = idx_value.expect("indirect access needs an index operand");
        (mem.array, (idx.round() as i64) * 8)
    } else {
        (mem.array, mem.offset + mem.stride * iteration)
    }
}

fn eval(sem: Sem, args: &[f64]) -> f64 {
    match sem {
        Sem::Add => args[0] + args[1],
        Sem::Sub => args[0] - args[1],
        Sem::Mul => args[0] * args[1],
        Sem::Div => {
            let d = if args[1].abs() < 1e-12 {
                1e-12
            } else {
                args[1]
            };
            args[0] / d
        }
        Sem::Sqrt => args[0].abs().sqrt(),
        Sem::Madd => args[0] * args[1] + args[2],
        Sem::Lt => f64::from(args[0] < args[1]),
        Sem::Select => {
            if args[0] != 0.0 {
                args[1]
            } else {
                args[2]
            }
        }
        Sem::Copy => args[0],
        Sem::Load | Sem::Store => unreachable!("memory ops handled by caller"),
    }
}

/// Execute `n` iterations sequentially (the reference semantics). Returns
/// the final memory image.
pub fn run_sequential(lp: &Loop, n: u64) -> MemoryImage {
    let mut mem = MemoryImage::new();
    // Rolling history of each value over the last `window` iterations.
    let window = lp
        .ops()
        .iter()
        .flat_map(|o| o.operands.iter())
        .map(|operand| operand.distance)
        .max()
        .unwrap_or(0) as usize
        + 1;
    let nvals = lp.values().len();
    let mut history: Vec<Vec<f64>> = vec![vec![0.0; nvals]; window];

    for i in 0..n as i64 {
        let slot = (i as usize) % window;
        // Values default-fill with invariants' seeds.
        for (v, info) in lp.values().iter().enumerate() {
            if info.is_invariant() {
                history[slot][v] = invariant_value(lp, ValueId(v as u32));
            }
        }
        for op in lp.ops() {
            let args: Vec<f64> = op
                .operands
                .iter()
                .map(|operand| {
                    let info = lp.value(operand.value);
                    if info.is_invariant() {
                        return invariant_value(lp, operand.value);
                    }
                    let src = i - i64::from(operand.distance);
                    if src < 0 {
                        seed_init(operand.value)
                    } else {
                        history[(src as usize) % window][operand.value.index()]
                    }
                })
                .collect();
            match op.sem {
                Sem::Load => {
                    let idx = if op.mem.expect("mem").indirect {
                        Some(args[0])
                    } else {
                        None
                    };
                    let (array, addr) = elem_addr(op, i, idx);
                    let v = mem.read(array, addr);
                    history[slot][op.result.expect("load result").index()] = v;
                }
                Sem::Store => {
                    let mem_desc = op.mem.expect("mem");
                    let (idx, val) = if mem_desc.indirect {
                        (Some(args[0]), args[1])
                    } else {
                        (None, args[0])
                    };
                    let (array, addr) = elem_addr(op, i, idx);
                    mem.write(array, addr, val);
                }
                sem => {
                    let v = eval(sem, &args);
                    history[slot][op.result.expect("result").index()] = v;
                }
            }
        }
    }
    mem
}

/// Execute `n` iterations in *pipelined issue order*: instance `(op, i)`
/// runs at cycle `i·II + time(op)`; within a cycle all loads read memory
/// before any store writes it. Returns the final memory image, which must
/// match [`run_sequential`] whenever the schedule respects the loop's
/// dependences.
///
/// # Errors
///
/// Returns [`SimError::UseBeforeDef`] when an instance consumes a value
/// whose defining instance has not executed — the execution-order witness
/// of a broken flow dependence.
pub fn run_pipelined(code: &PipelinedLoop, n: u64) -> Result<MemoryImage, SimError> {
    let lp = code.body();
    let schedule = code.schedule();
    let ii = i64::from(code.ii());
    let mut mem = MemoryImage::new();
    let mut results: HashMap<(OpId, i64), f64> = HashMap::new();

    // All instances sorted by cycle; loads (and arithmetic) before stores
    // within a cycle.
    let mut instances: Vec<(i64, u8, OpId, i64)> = Vec::new();
    for op in lp.ops() {
        let t = schedule.time(op.id);
        let order = u8::from(op.sem == Sem::Store);
        for i in 0..n as i64 {
            instances.push((t + i * ii, order, op.id, i));
        }
    }
    instances.sort_unstable();

    for (_, _, opid, i) in instances {
        let op = lp.op(opid);
        let mut args: Vec<f64> = Vec::with_capacity(op.operands.len());
        for operand in &op.operands {
            let info = lp.value(operand.value);
            if info.is_invariant() {
                args.push(invariant_value(lp, operand.value));
                continue;
            }
            let src = i - i64::from(operand.distance);
            if src < 0 {
                args.push(seed_init(operand.value));
                continue;
            }
            let def = info.def.expect("non-invariant has def");
            match results.get(&(def, src)) {
                Some(&v) => args.push(v),
                None => {
                    return Err(SimError::UseBeforeDef {
                        consumer: opid,
                        def,
                        iteration: src,
                    })
                }
            }
        }
        match op.sem {
            Sem::Load => {
                let idx = if op.mem.expect("mem").indirect {
                    Some(args[0])
                } else {
                    None
                };
                let (array, addr) = elem_addr(op, i, idx);
                results.insert((opid, i), mem.read(array, addr));
            }
            Sem::Store => {
                let mem_desc = op.mem.expect("mem");
                let (idx, val) = if mem_desc.indirect {
                    (Some(args[0]), args[1])
                } else {
                    (None, args[0])
                };
                let (array, addr) = elem_addr(op, i, idx);
                mem.write(array, addr, val);
            }
            sem => {
                results.insert((opid, i), eval(sem, &args));
            }
        }
    }
    Ok(mem)
}

/// Differential translation validation: run both loops sequentially for
/// `iters` iterations and compare the memory images (`bits_eq` when
/// `tol == 0.0`, `approx_eq` otherwise). This is the oracle the mid-end
/// pass pipeline consults after every pass application.
///
/// # Errors
///
/// Returns a description of the divergence (cell counts or the first
/// mismatching cell) when the images disagree.
pub fn check_loops_equivalent(a: &Loop, b: &Loop, iters: u64, tol: f64) -> Result<(), String> {
    let ma = run_sequential(a, iters);
    let mb = run_sequential(b, iters);
    let same = if tol == 0.0 {
        ma.bits_eq(&mb)
    } else {
        ma.approx_eq(&mb, tol)
    };
    if same {
        return Ok(());
    }
    let wa = ma.written();
    let wb = mb.written();
    if wa.len() != wb.len() {
        return Err(format!(
            "memory images differ in written-cell count: {} vs {}",
            wa.len(),
            wb.len()
        ));
    }
    for ((ka, va), (kb, vb)) in wa.iter().zip(&wb) {
        if ka != kb {
            return Err(format!("written cells differ: {ka:?} vs {kb:?}"));
        }
        if va.to_bits() != vb.to_bits() {
            return Err(format!("cell {ka:?} diverged: {va} vs {vb}"));
        }
    }
    Err("memory images diverged".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_heur::{pipeline, HeurOptions};
    use swp_ir::{passes, LoopBuilder};
    use swp_machine::Machine;

    fn stencil_loop() -> Loop {
        // y[i] = x[i-1] computed last iteration * a + x[i]: has a memory
        // carried dependence through y and register reuse.
        let mut b = LoopBuilder::new("stencil");
        let a = b.invariant_f("a");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let xm = b.load(x, -8, 8);
        let xc = b.load(x, 0, 8);
        let t = b.fmadd(a, xm, xc);
        b.store(y, 0, 8, t);
        b.finish()
    }

    #[test]
    fn sequential_matches_pipelined_on_stencil() {
        let m = Machine::r8000();
        let lp = stencil_loop();
        let p = pipeline(&lp, &m, &HeurOptions::default()).expect("pipelines");
        let code = PipelinedLoop::expand(&p.body, &p.schedule, &p.allocation);
        let seq = run_sequential(&lp, 30);
        let pip = run_pipelined(&code, 30).expect("schedule preserves dependences");
        assert!(seq.approx_eq(&pip, 0.0), "pipelined execution diverged");
    }

    #[test]
    fn memory_recurrence_preserved() {
        // store a[i]; load a[i-1]: a true memory recurrence the scheduler
        // must not break.
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("memrec");
        let a = b.array("a", 8);
        let prev = b.load(a, -8, 8);
        let nxt = b.fmul(prev, prev);
        b.store(a, 0, 8, nxt);
        let lp = b.finish();
        let p = pipeline(&lp, &m, &HeurOptions::default()).expect("pipelines");
        let code = PipelinedLoop::expand(&p.body, &p.schedule, &p.allocation);
        let seq = run_sequential(&lp, 20);
        let pip = run_pipelined(&code, 20).expect("schedule preserves dependences");
        assert!(seq.approx_eq(&pip, 0.0));
    }

    #[test]
    fn use_before_def_is_a_structured_error() {
        // Issue the fmadd *before* the loads it consumes: iteration 0 of
        // the consumer runs with no producer instance on record.
        let m = Machine::r8000();
        let lp = stencil_loop();
        let ddg = swp_ir::Ddg::build(&lp, &m);
        let broken = swp_ir::Schedule::new(4, vec![8, 8, 0, 13]);
        assert!(broken.validate(&lp, &ddg, &m).is_err(), "broken on purpose");
        let alloc = match swp_regalloc::allocate(&lp, &broken, &m) {
            swp_regalloc::AllocOutcome::Allocated(a) => a,
            swp_regalloc::AllocOutcome::Failed { .. } => unreachable!("tiny loop fits"),
        };
        let code = PipelinedLoop::expand(&lp, &broken, &alloc);
        let err = run_pipelined(&code, 4).expect_err("must not execute");
        let SimError::UseBeforeDef { consumer, .. } = err;
        assert_eq!(consumer, lp.ops()[2].id);
        assert_eq!(err.lint_code(), "SWP-X001");
        assert!(err.to_string().starts_with("SWP-X001: "));
    }

    #[test]
    fn spilling_preserves_semantics() {
        let lp = stencil_loop();
        // Spill the fmadd result.
        let target = lp.ops()[2].result.expect("madd result");
        let spilled = passes::spill_to_memory(&lp, &[target]);
        let a = run_sequential(&lp, 25);
        let b = run_sequential(&spilled, 25);
        // Compare only cells of the original arrays (the spill slot is new).
        let aw = a.written();
        let bw: Vec<_> = b
            .written()
            .into_iter()
            .filter(|((arr, _), _)| *arr < 2)
            .collect();
        assert_eq!(aw, bw); // finite values here; exact equality expected
    }

    #[test]
    fn unroll_preserves_semantics() {
        let lp = stencil_loop();
        let un = passes::unroll(&lp, 3, &[]);
        let a = run_sequential(&lp, 30);
        let b = run_sequential(&un, 10);
        assert!(a.approx_eq(&b, 0.0), "3x unroll × 10 iters == 30 iters");
    }

    #[test]
    fn reduction_interleaving_reassociates_only() {
        let mut b = LoopBuilder::new("sum");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let s1 = b.fadd(s.value(), v);
        b.close(s, s1, 1);
        b.store(x, 800000, 8, s1);
        let lp = b.finish();
        let (il, n) = passes::interleave_reduction(&lp, 4);
        assert_eq!(n, 1);
        // Interleaving changes the summation *order*, so compare final
        // accumulator sums loosely. The interleaved version stores partial
        // sums; instead of matching stores exactly, check both store
        // *something* finite at the same number of cells.
        let a = run_sequential(&lp, 20);
        let b2 = run_sequential(&il, 5);
        assert_eq!(a.written().len(), b2.written().len());
        assert!(b2.written().iter().all(|(_, v)| v.is_finite()));
    }

    #[test]
    fn if_conversion_matches_reference() {
        use swp_ir::hir::{HExpr, HStmt, HirLoop};
        // abs-like loop via HIR...
        let x = HExpr::load("x", 0, 8);
        let h = HirLoop::new(
            "abs",
            vec![
                HStmt::if_(
                    HExpr::lt(x.clone(), HExpr::invariant("zero")),
                    vec![HStmt::let_(
                        "r",
                        HExpr::sub(HExpr::invariant("zero"), x.clone()),
                    )],
                    vec![HStmt::let_("r", x)],
                ),
                HStmt::store("y", 0, 8, HExpr::local("r")),
            ],
        )
        .lower();
        // ... and the same loop hand-written with an explicit select.
        let mut b = LoopBuilder::new("abs2");
        let x2 = b.array("x", 8);
        let y2 = b.array("y", 8);
        let zero = b.invariant_f("zero");
        let v = b.load(x2, 0, 8);
        let c = b.fcmp(v, zero);
        let neg = b.fsub(zero, v);
        let r = b.cmov(c, neg, v);
        b.store(y2, 0, 8, r);
        let manual = b.finish();
        let a = run_sequential(&h, 15);
        let bb = run_sequential(&manual, 15);
        // Invariant ids may differ between the two loops, so seeds could
        // differ; both use one invariant (id-dependent seed). Compare only
        // if seeds align: invariant "zero" is value index 1 in both? Guard:
        assert_eq!(a.written().len(), bb.written().len());
    }
}
