//! Final code construction for software-pipelined loops.
//!
//! §3.2 of the paper notes that modulo renaming, pipeline fill and drain
//! generation "and other related bookkeeping tasks … account for a large
//! part of the job of implementing a working pipeliner" (18% of the
//! MIPSpro pipeliner). This crate is that postprocessing: given a loop, a
//! modulo [`swp_ir::Schedule`], and a register [`swp_regalloc::Allocation`],
//! it builds a
//! [`PipelinedLoop`] artifact — the prologue (fill), the modulo-renamed
//! kernel, and the epilogue (drain) — and reports the static overhead
//! measures of Figure 7 (registers used, cycles to enter and exit the
//! loop).
//!
//! A non-pipelined baseline (a simple list schedule of one iteration, what
//! MIPSpro falls back to with pipelining disabled, §4.1) lives in
//! [`list_schedule`].

mod baseline;
mod expand;

pub use baseline::{list_schedule, BaselineLoop};
pub use expand::{CodeOp, CodeSection, Overhead, PipelinedLoop};

#[cfg(test)]
mod tests {
    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::PipelinedLoop>();
        assert_send_sync::<crate::BaselineLoop>();
    }
}
