//! The non-pipelined baseline: a simple list schedule of one iteration.
//!
//! §4.1 of the paper: "When software pipelining is disabled a fairly simple
//! list scheduler is used." Iterations execute back to back with no
//! overlap; the per-iteration cost includes trailing latencies so that
//! loop-carried values are ready before the next iteration starts.

use swp_ir::{Ddg, Loop, OpId, Schedule};
use swp_machine::{Machine, ResourceClass};

/// A list-scheduled, non-overlapped loop body.
#[derive(Debug, Clone)]
pub struct BaselineLoop {
    body: Loop,
    times: Vec<i64>,
    cycles_per_iter: u64,
}

impl BaselineLoop {
    /// The scheduled body.
    pub fn body(&self) -> &Loop {
        &self.body
    }

    /// Issue cycle of an op within one iteration.
    pub fn time(&self, op: OpId) -> i64 {
        self.times[op.index()]
    }

    /// All per-iteration issue cycles.
    pub fn times(&self) -> &[i64] {
        &self.times
    }

    /// Cycles per iteration (makespan including trailing latencies).
    pub fn cycles_per_iter(&self) -> u64 {
        self.cycles_per_iter
    }

    /// Stall-free cycles for `n` iterations (sequential execution).
    pub fn static_cycles(&self, n: u64) -> u64 {
        n * self.cycles_per_iter
    }

    /// View the baseline as a degenerate modulo schedule whose II equals
    /// the full iteration length (useful for shared analysis code).
    pub fn as_schedule(&self) -> Schedule {
        Schedule::new(self.cycles_per_iter.max(1) as u32, self.times.clone())
    }
}

/// Greedy critical-path list scheduling of a single iteration.
///
/// Loop-carried arcs are ignored during placement (they are satisfied by
/// sequential iteration execution); distance-0 arcs and machine resources
/// are respected exactly.
pub fn list_schedule(lp: &Loop, ddg: &Ddg, machine: &Machine) -> BaselineLoop {
    let n = lp.len();
    // Heights on distance-0 arcs for the priority.
    let mut height = vec![0i64; n];
    let mut changed = true;
    let mut guard = 0;
    while changed && guard <= n + 1 {
        changed = false;
        guard += 1;
        for e in ddg.edges() {
            if e.distance == 0 {
                let cand = height[e.to.index()] + e.latency;
                if cand > height[e.from.index()] {
                    height[e.from.index()] = cand;
                    changed = true;
                }
            }
        }
    }
    let mut order: Vec<OpId> = lp.ops().iter().map(|o| o.id).collect();
    order.sort_by_key(|&o| (std::cmp::Reverse(height[o.index()]), o));

    // Expanding (non-modulo) resource rows.
    let mut rows: Vec<[u32; 4]> = Vec::new();
    let mut limits = [0u32; 4];
    for class in ResourceClass::ALL {
        limits[class.index()] = machine.units(class);
    }
    let mut times = vec![-1i64; n];
    let mut remaining: Vec<OpId> = order;
    while !remaining.is_empty() {
        // Pick the highest-priority ready op (all distance-0 preds placed).
        let idx = remaining
            .iter()
            .position(|&o| {
                ddg.pred_edges(o)
                    .filter(|e| e.distance == 0 && e.from != o)
                    .all(|e| times[e.from.index()] >= 0)
            })
            .expect("acyclic at distance 0: some op is ready");
        let op = remaining.remove(idx);
        let ready = ddg
            .pred_edges(op)
            .filter(|e| e.distance == 0 && e.from != op)
            .map(|e| times[e.from.index()] + e.latency)
            .max()
            .unwrap_or(0)
            .max(0);
        let class = lp.op(op).class;
        let mut c = ready;
        loop {
            // Grow rows as needed and test the reservations.
            let need_until = c + i64::from(
                machine
                    .reservations(class)
                    .iter()
                    .map(|r| r.duration)
                    .max()
                    .unwrap_or(1),
            );
            while (rows.len() as i64) < need_until {
                rows.push([0; 4]);
            }
            let fits = machine.reservations(class).iter().all(|r| {
                (0..r.duration).all(|d| {
                    let row = (c + i64::from(d)) as usize;
                    rows[row][r.class.index()] < limits[r.class.index()]
                })
            });
            if fits {
                for r in machine.reservations(class) {
                    for d in 0..r.duration {
                        rows[(c + i64::from(d)) as usize][r.class.index()] += 1;
                    }
                }
                times[op.index()] = c;
                break;
            }
            c += 1;
        }
    }

    let cycles_per_iter = lp
        .ops()
        .iter()
        .map(|o| times[o.id.index()] + i64::from(machine.latency(o.class)))
        .max()
        .unwrap_or(1)
        .max(1) as u64;
    BaselineLoop {
        body: lp.clone(),
        times,
        cycles_per_iter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ir::LoopBuilder;
    use swp_machine::Machine;

    #[test]
    fn baseline_respects_latencies() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.fadd(v, v);
        b.store(y, 0, 8, w);
        let lp = b.finish();
        let ddg = Ddg::build(&lp, &m);
        let base = list_schedule(&lp, &ddg, &m);
        assert!(base.time(lp.ops()[1].id) >= base.time(lp.ops()[0].id) + 4);
        assert!(base.time(lp.ops()[2].id) >= base.time(lp.ops()[1].id) + 4);
        // Chain load(4) + fadd(4) + store(1): at least 9 cycles per iter.
        assert!(base.cycles_per_iter() >= 9);
    }

    #[test]
    fn baseline_is_much_slower_than_pipeline() {
        // The headline effect of Figure 2: pipelining wins big on parallel
        // loops.
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let a = b.invariant_f("a");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let xv = b.load(x, 0, 8);
        let yv = b.load(y, 0, 8);
        let r = b.fmadd(a, xv, yv);
        b.store(y, 0, 8, r);
        let lp = b.finish();
        let ddg = Ddg::build(&lp, &m);
        let base = list_schedule(&lp, &ddg, &m);
        let p = swp_heur::pipeline(&lp, &m, &swp_heur::HeurOptions::default()).expect("pipelines");
        assert!(
            base.cycles_per_iter() as u32 >= 3 * p.schedule.ii(),
            "baseline {} vs II {}",
            base.cycles_per_iter(),
            p.schedule.ii()
        );
    }

    #[test]
    fn baseline_resources_respected() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v1 = b.load(x, 0, 8);
        let v2 = b.load(x, 800, 8);
        let v3 = b.load(x, 1600, 8);
        let s1 = b.fadd(v1, v2);
        let s2 = b.fadd(s1, v3);
        b.store(x, 80000, 8, s2);
        let lp = b.finish();
        let ddg = Ddg::build(&lp, &m);
        let base = list_schedule(&lp, &ddg, &m);
        // No cycle holds 3 memory refs.
        for c in 0..base.cycles_per_iter() as i64 {
            let refs = lp.mem_ops().filter(|o| base.time(o.id) == c).count();
            assert!(refs <= 2, "cycle {c} has {refs} memory refs");
        }
    }
}
