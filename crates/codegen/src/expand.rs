//! Pipeline expansion: prologue / kernel / epilogue and overhead metrics.

use swp_ir::{Loop, OpId, Schedule};
use swp_machine::RegClass;
use swp_regalloc::Allocation;

/// One instruction of the expanded code: operation `op` executing on behalf
/// of logical iteration `iteration`, issued at `cycle` (absolute from loop
/// entry for prologue/epilogue, relative to the kernel window for kernel
/// entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeOp {
    /// The loop-body operation.
    pub op: OpId,
    /// Logical iteration index (prologue: 0-based; kernel/epilogue:
    /// relative to the kernel's base iteration).
    pub iteration: i64,
    /// Issue cycle of this instance within its section.
    pub cycle: i64,
}

/// Static overhead of entering and exiting the pipelined loop — the
/// second-order quality measures the paper compares in Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overhead {
    /// Cycles before the steady state is reached (`(SC−1)·II`).
    pub fill_cycles: i64,
    /// Cycles to drain after the last kernel window (`span + 1 − II`).
    pub drain_cycles: i64,
    /// Cycles modeled for saving/restoring registers beyond the
    /// caller-saved set around the loop.
    pub reg_save_cycles: i64,
    /// Instructions in the fill and drain code.
    pub instructions: usize,
}

impl Overhead {
    /// Total overhead in cycles (Figure 7's "overall pipeline overhead,
    /// measured in cycles required to enter and exit the loop").
    pub fn total_cycles(&self) -> i64 {
        self.fill_cycles + self.drain_cycles + self.reg_save_cycles
    }
}

/// Registers free for loop use without save/restore (model constant,
/// documented in DESIGN.md): beyond this many per class, each extra
/// register costs one save plus one restore cycle in the loop prologue and
/// epilogue.
const FREE_REGS_PER_CLASS: u32 = 16;

/// A fully expanded software-pipelined loop, ready for simulation.
///
/// # Examples
///
/// ```
/// use swp_heur::{pipeline, HeurOptions};
/// use swp_ir::LoopBuilder;
/// use swp_machine::Machine;
/// use swp_codegen::PipelinedLoop;
///
/// let m = Machine::r8000();
/// let mut b = LoopBuilder::new("scale");
/// let a = b.invariant_f("a");
/// let x = b.array("x", 8);
/// let v = b.load(x, 0, 8);
/// let w = b.fmul(a, v);
/// b.store(x, 0, 8, w);
/// let lp = b.finish();
/// let p = pipeline(&lp, &m, &HeurOptions::default())?;
/// let code = PipelinedLoop::expand(&p.body, &p.schedule, &p.allocation);
/// assert!(code.stage_count() >= 2);
/// assert!(code.overhead().total_cycles() > 0);
/// # Ok::<(), swp_heur::PipelineError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelinedLoop {
    body: Loop,
    schedule: Schedule,
    allocation: Allocation,
    unroll: u32,
    stage_count: u32,
    prologue: Vec<CodeOp>,
    kernel: Vec<CodeOp>,
    epilogue: Vec<CodeOp>,
    overhead: Overhead,
    regs: [u32; 2],
}

/// One of the three expanded code sections, for
/// [`PipelinedLoop::with_tampered_op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeSection {
    /// Fill code.
    Prologue,
    /// The steady-state window.
    Kernel,
    /// Drain code.
    Epilogue,
}

impl PipelinedLoop {
    /// Expand a scheduled, allocated loop into fill + kernel + drain code.
    pub fn expand(body: &Loop, schedule: &Schedule, allocation: &Allocation) -> PipelinedLoop {
        let ii = i64::from(schedule.ii());
        let sc = schedule.stage_count();
        let span = schedule.span();

        // Prologue: cycles [0, (SC-1)·II); iteration i's op instance at
        // absolute cycle i·II + time(op).
        let fill_end = i64::from(sc - 1) * ii;
        let mut prologue = Vec::new();
        for op in body.ops() {
            let t = schedule.time(op.id);
            let mut i = 0i64;
            while i * ii + t < fill_end {
                prologue.push(CodeOp {
                    op: op.id,
                    iteration: i,
                    cycle: i * ii + t,
                });
                i += 1;
            }
        }
        prologue.sort_by_key(|c| (c.cycle, c.op));

        // Kernel: one II window of the steady state. An op at stage s
        // executes on behalf of iteration (base − s).
        let mut kernel = Vec::new();
        for op in body.ops() {
            kernel.push(CodeOp {
                op: op.id,
                iteration: -i64::from(schedule.stage(op.id)),
                cycle: i64::from(schedule.row(op.id)),
            });
        }
        kernel.sort_by_key(|c| (c.cycle, c.op));

        // Epilogue: instances issuing after the last kernel window. An
        // instance of iteration `N−s` (s ≥ 1) with op time `t` lands at
        // epilogue cycle `t − s·II` when that is non-negative; iteration
        // offsets are relative (−s = s iterations before the end).
        let mut epilogue = Vec::new();
        for op in body.ops() {
            let t = schedule.time(op.id);
            for s in 1..i64::from(sc) {
                let c = t - s * ii;
                if c >= 0 {
                    epilogue.push(CodeOp {
                        op: op.id,
                        iteration: -s,
                        cycle: c,
                    });
                }
            }
        }
        epilogue.sort_by_key(|c| (c.cycle, c.op));

        let fp = allocation.regs_used(RegClass::Float);
        let int = allocation.regs_used(RegClass::Int);
        let reg_save_cycles = i64::from(fp.saturating_sub(FREE_REGS_PER_CLASS))
            + i64::from(int.saturating_sub(FREE_REGS_PER_CLASS));
        let overhead = Overhead {
            fill_cycles: fill_end,
            drain_cycles: span + 1 - ii,
            reg_save_cycles,
            instructions: prologue.len() + epilogue.len(),
        };
        PipelinedLoop {
            body: body.clone(),
            schedule: schedule.clone(),
            allocation: allocation.clone(),
            unroll: allocation.unroll(),
            stage_count: sc,
            prologue,
            kernel,
            epilogue,
            overhead,
            regs: [fp, int],
        }
    }

    /// The loop body this code was generated from.
    pub fn body(&self) -> &Loop {
        &self.body
    }

    /// The underlying modulo schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The register allocation this code was expanded with.
    pub fn allocation(&self) -> &Allocation {
        &self.allocation
    }

    /// A copy of this code with one expanded instruction overwritten.
    /// Fault injection for the `swp-verify` mutation tests; never part of
    /// normal code generation.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the section.
    pub fn with_tampered_op(
        &self,
        section: CodeSection,
        index: usize,
        op: CodeOp,
    ) -> PipelinedLoop {
        let mut out = self.clone();
        let slot = match section {
            CodeSection::Prologue => &mut out.prologue[index],
            CodeSection::Kernel => &mut out.kernel[index],
            CodeSection::Epilogue => &mut out.epilogue[index],
        };
        *slot = op;
        out
    }

    /// A copy of this code with the schedule replaced and the expanded
    /// sections left untouched. Fault injection for the `swp-verify`
    /// mutation tests and the chaos harness (the decoupling between the
    /// claimed schedule and the emitted code is exactly what the schedule
    /// and expansion auditors exist to catch); never part of normal code
    /// generation.
    pub fn with_tampered_schedule(&self, schedule: Schedule) -> PipelinedLoop {
        let mut out = self.clone();
        out.schedule = schedule;
        out
    }

    /// A copy of this code with the register allocation replaced and
    /// everything else left untouched. Fault injection for the
    /// `swp-verify` mutation tests and the chaos harness; never part of
    /// normal code generation.
    pub fn with_tampered_allocation(&self, allocation: Allocation) -> PipelinedLoop {
        let mut out = self.clone();
        out.allocation = allocation;
        out
    }

    /// The achieved II.
    pub fn ii(&self) -> u32 {
        self.schedule.ii()
    }

    /// Overlapped stages in the steady state.
    pub fn stage_count(&self) -> u32 {
        self.stage_count
    }

    /// Kernel replication factor from modulo renaming.
    pub fn unroll(&self) -> u32 {
        self.unroll
    }

    /// Fill code.
    pub fn prologue(&self) -> &[CodeOp] {
        &self.prologue
    }

    /// One steady-state window.
    pub fn kernel(&self) -> &[CodeOp] {
        &self.kernel
    }

    /// Drain code.
    pub fn epilogue(&self) -> &[CodeOp] {
        &self.epilogue
    }

    /// Static entry/exit overhead.
    pub fn overhead(&self) -> Overhead {
        self.overhead
    }

    /// Registers used in a class (including invariants).
    pub fn regs_used(&self, class: RegClass) -> u32 {
        match class {
            RegClass::Float => self.regs[0],
            RegClass::Int => self.regs[1],
        }
    }

    /// Total registers across classes (Figure 7's register metric).
    pub fn total_regs(&self) -> u32 {
        self.regs.iter().sum()
    }

    /// Total cycles to execute `n` iterations on a stall-free machine:
    /// `(n−1)·II + span + 1` for `n ≥ 1`, plus register save/restore
    /// overhead. The memory system may add stalls on top (see `swp-sim`).
    pub fn static_cycles(&self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let ii = u64::from(self.schedule.ii());
        (n - 1) * ii + self.schedule.span() as u64 + 1 + self.overhead.reg_save_cycles as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_heur::{pipeline, HeurOptions};
    use swp_ir::LoopBuilder;
    use swp_machine::Machine;

    fn expand_simple() -> PipelinedLoop {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.fadd(v, v);
        b.store(y, 0, 8, w);
        let lp = b.finish();
        let p = pipeline(&lp, &m, &HeurOptions::default()).expect("pipelines");
        PipelinedLoop::expand(&p.body, &p.schedule, &p.allocation)
    }

    #[test]
    fn kernel_contains_every_op_once() {
        let code = expand_simple();
        assert_eq!(code.kernel().len(), code.body().len());
        let mut ops: Vec<usize> = code.kernel().iter().map(|c| c.op.index()).collect();
        ops.sort_unstable();
        assert_eq!(ops, (0..code.body().len()).collect::<Vec<_>>());
    }

    #[test]
    fn prologue_matches_fill_window() {
        let code = expand_simple();
        let fill = code.overhead().fill_cycles;
        assert!(code.prologue().iter().all(|c| c.cycle < fill));
        // Iteration 0's earliest op must be in the prologue when SC > 1.
        if code.stage_count() > 1 {
            assert!(code.prologue().iter().any(|c| c.iteration == 0));
        }
    }

    #[test]
    fn static_cycles_formula() {
        let code = expand_simple();
        let ii = u64::from(code.ii());
        let one = code.static_cycles(1);
        let many = code.static_cycles(101);
        assert_eq!(many - one, 100 * ii, "marginal cost of an iteration is II");
        assert_eq!(code.static_cycles(0), 0);
    }

    #[test]
    fn overhead_counts_prologue_and_epilogue_instructions() {
        let code = expand_simple();
        assert_eq!(
            code.overhead().instructions,
            code.prologue().len() + code.epilogue().len()
        );
        // Every prologue instance has a matching skipped kernel slot:
        // prologue instances = Σ_op stage(op).
        let expected: i64 = code
            .body()
            .ops()
            .iter()
            .map(|o| i64::from(code.schedule().stage(o.id)))
            .sum();
        assert_eq!(code.prologue().len() as i64, expected);
    }
}
