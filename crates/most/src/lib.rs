//! MOST — the McGill "optimal" ILP-based software pipeliner (§3 of the
//! paper), embedded exactly as the study embedded it in MIPSpro:
//!
//! 1. at each II (starting from MinII), solve the **resource-constrained**
//!    scheduling ILP first (§3.3 adjustment 1 — the integrated
//!    formulation was "just too slow"),
//! 2. re-solve with the **buffer-minimization objective** and accept the
//!    best incumbent when the budget runs out (§3.3 adjustment 2),
//! 3. drive the solver's branch-and-bound with the **same multiple
//!    priority orders** as the SGI scheduler (§3.3 adjustment 3 — "by far
//!    the most important factor"),
//! 4. register-allocate the result with the standard coloring allocator
//!    (the \[NiGa93\] flow: rate-optimal schedule, then coloring), and
//! 5. optionally **fall back to the heuristic pipeliner** when MOST cannot
//!    schedule in time (§4.4's experimental setup).
//!
//! # Examples
//!
//! ```
//! use swp_most::{pipeline_most, MostOptions};
//! use swp_ir::LoopBuilder;
//! use swp_machine::Machine;
//!
//! let m = Machine::r8000();
//! let mut b = LoopBuilder::new("scale");
//! let a = b.invariant_f("a");
//! let x = b.array("x", 8);
//! let v = b.load(x, 0, 8);
//! let w = b.fmul(a, v);
//! b.store(x, 0, 8, w);
//! let lp = b.finish();
//! let r = pipeline_most(&lp, &m, &MostOptions::default()).expect("schedules");
//! assert!(!r.stats.fell_back);
//! assert!(r.schedule.ii() >= 1);
//! ```

mod formulation;

pub use formulation::{build_model, Objective, SchedulingModel};

use std::time::{Duration, Instant};
use swp_heur::{priority_list, HeurOptions, PriorityHeuristic};
use swp_ilp::{solve_ilp, SolveOptions, Status};
use swp_ir::{Ddg, Loop, Schedule};
use swp_machine::Machine;
use swp_regalloc::{allocate, AllocOutcome, Allocation};

/// Controls for the MOST pipeliner.
#[derive(Debug, Clone)]
pub struct MostOptions {
    /// Minimize buffers after establishing feasibility (§3.3 adj. 2);
    /// `false` stops at the first feasible schedule.
    pub minimize_buffers: bool,
    /// Node budget per ILP solve (deterministic; tests rely on this).
    pub node_limit: u64,
    /// Simplex pivot budget per ILP solve. Like `node_limit` this is a
    /// deterministic measure of work — identical inputs truncate at
    /// identical points regardless of host load — but it bounds work at a
    /// much finer grain: a single pathological node LP cannot eat the
    /// whole budget unnoticed.
    pub pivot_limit: u64,
    /// Wall-clock budget per ILP solve. The study used 3 minutes (§3.3).
    pub time_limit: Option<Duration>,
    /// Drive branching with the SGI priority orders (§3.3 adj. 3).
    pub use_priority_orders: bool,
    /// `MaxII = max_ii_factor × MinII`, as for the heuristic pipeliner.
    pub max_ii_factor: u32,
    /// Fall back to the heuristic pipeliner when MOST fails (§4.4).
    pub fallback: bool,
    /// Overall wall-clock budget for the whole II search on one loop (the
    /// paper's three-minute regime was per search; this caps the loop).
    pub loop_time_limit: Option<Duration>,
    /// Deterministic analogue of [`loop_time_limit`](Self::loop_time_limit):
    /// total simplex pivots across the whole II ladder. Once the ladder
    /// has spent this many pivots, no further II is attempted (the solve
    /// in flight still completes, so the overshoot is at most one
    /// `pivot_limit`). Without it, a loop whose schedules keep failing
    /// register allocation retries every II up to MaxII at full budget —
    /// and the only way to bound that was wall clock, which quick budgets
    /// must not depend on.
    pub loop_pivot_limit: Option<u64>,
    /// Loops larger than this are not attempted by the ILP at all — §5.0
    /// reports MOST's practical ceiling at 61 operations; beyond it the
    /// solves only burn their full budgets before failing.
    pub max_ops: usize,
    /// Cooperative cancellation, polled per simplex pivot batch (the same
    /// granularity as `time_limit`). A cancelled search reports
    /// `deadline_hit` so the schedule cache never memoizes it. Not part
    /// of the cache key.
    pub cancel: swp_obs::CancelToken,
}

impl Default for MostOptions {
    fn default() -> MostOptions {
        MostOptions {
            minimize_buffers: true,
            node_limit: 200_000,
            pivot_limit: 10_000_000,
            time_limit: Some(Duration::from_secs(180)),
            use_priority_orders: true,
            max_ii_factor: 2,
            fallback: true,
            loop_time_limit: Some(Duration::from_secs(180)),
            loop_pivot_limit: None,
            max_ops: 80,
            cancel: swp_obs::CancelToken::never(),
        }
    }
}

impl MostOptions {
    /// The same budgets with the internal heuristic fallback disabled.
    /// The degradation ladder runs MOST this way: demotion to the
    /// heuristic is the ladder's job, and keeping the fallback inside
    /// MOST would blur which rung actually produced a schedule.
    pub fn without_fallback(&self) -> MostOptions {
        MostOptions {
            fallback: false,
            ..self.clone()
        }
    }
}

/// Statistics of a MOST run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MostStats {
    /// MinII of the loop.
    pub min_ii: u32,
    /// Branch-and-bound nodes across all solves.
    pub nodes: u64,
    /// Simplex pivots across all solves (the deterministic work measure).
    pub pivots: u64,
    /// ILP solves performed.
    pub solves: u32,
    /// Whether any wall-clock deadline truncated the search. A result
    /// carrying this flag depends on host load and is *not* reproducible;
    /// the schedule cache refuses to memoize such results.
    pub deadline_hit: bool,
    /// Whether the achieved II equals MinII with a completed search
    /// (a certificate of rate-optimality).
    pub optimal_ii: bool,
    /// Total FIFO buffers of the accepted schedule, when minimized.
    pub buffers: Option<u32>,
    /// Whether the heuristic fallback produced the result.
    pub fell_back: bool,
    /// IIs probed.
    pub iis_tried: Vec<u32>,
    /// Wall-clock time spent in ILP solving.
    pub solve_time: Duration,
    /// Nanoseconds spent in register allocation (including the
    /// fallback's allocation attempts, when it ran).
    pub alloc_ns: u64,
}

/// A loop pipelined by MOST (or its heuristic fallback).
#[derive(Debug, Clone)]
pub struct MostPipelined {
    /// The scheduled body (identical to the input unless the fallback
    /// spilled).
    pub body: Loop,
    /// The accepted schedule.
    pub schedule: Schedule,
    /// A valid register allocation.
    pub allocation: Allocation,
    /// Run statistics.
    pub stats: MostStats,
}

impl MostPipelined {
    /// The achieved II.
    pub fn ii(&self) -> u32 {
        self.schedule.ii()
    }
}

/// Why MOST (and its fallback, if enabled) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MostError {
    /// The loop body is empty.
    EmptyLoop,
    /// No schedule found up to MaxII and the fallback was disabled or
    /// failed too.
    NoSchedule {
        /// MinII bound.
        min_ii: u32,
        /// MaxII bound.
        max_ii: u32,
        /// Whether a wall-clock deadline truncated the search. When set,
        /// the failure is host-load-dependent (retrying may succeed); the
        /// schedule cache never memoizes it.
        deadline_hit: bool,
    },
}

impl std::fmt::Display for MostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MostError::EmptyLoop => write!(f, "cannot pipeline an empty loop"),
            MostError::NoSchedule {
                min_ii,
                max_ii,
                deadline_hit,
            } => {
                write!(f, "MOST found no schedule in II range [{min_ii}, {max_ii}]")?;
                if *deadline_hit {
                    write!(f, " (wall-clock deadline hit; result is host-dependent)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for MostError {}

/// Pipeline a loop with the ILP method, §3-style.
///
/// # Errors
///
/// [`MostError::EmptyLoop`] on empty bodies, [`MostError::NoSchedule`]
/// when nothing (including the fallback) works.
pub fn pipeline_most(
    lp: &Loop,
    machine: &Machine,
    opts: &MostOptions,
) -> Result<MostPipelined, MostError> {
    if lp.is_empty() {
        return Err(MostError::EmptyLoop);
    }
    if lp.len() > opts.max_ops {
        return fallback_or_fail(lp, machine, opts, 0, 0, false);
    }
    let ddg = Ddg::build(lp, machine);
    let min_ii = ddg.min_ii();
    let max_ii = (min_ii * opts.max_ii_factor.max(1)).max(min_ii + 1);
    let mut stats = MostStats {
        min_ii,
        ..MostStats::default()
    };

    let orders: Vec<Vec<swp_ir::OpId>> = if opts.use_priority_orders {
        PriorityHeuristic::ALL
            .iter()
            .map(|&h| priority_list(lp, &ddg, machine, h))
            .collect()
    } else {
        vec![lp.ops().iter().map(|o| o.id).collect()]
    };

    let started = Instant::now();
    let loop_deadline = opts.loop_time_limit.map(|d| started + d);
    for ii in min_ii..=max_ii {
        if opts.cancel.is_cancelled() || loop_deadline.is_some_and(|d| Instant::now() >= d) {
            stats.deadline_hit = true;
            break;
        }
        if opts.loop_pivot_limit.is_some_and(|l| stats.pivots >= l) {
            break;
        }
        stats.iis_tried.push(ii);
        swp_obs::count(swp_obs::Counter::MostIiSteps, 1);
        let step_span = swp_obs::span("most.ii_step").with_i("ii", i64::from(ii));
        let solved = solve_at_ii(lp, &ddg, machine, ii, opts, &orders, &mut stats);
        drop(step_span);
        if let Some((schedule, buffers, complete)) = solved {
            debug_assert_eq!(schedule.validate(lp, &ddg, machine), Ok(()));
            let (outcome, alloc_ns) =
                swp_obs::timed_ns("regalloc.attempt", || allocate(lp, &schedule, machine));
            stats.alloc_ns = stats.alloc_ns.saturating_add(alloc_ns);
            match outcome {
                AllocOutcome::Allocated(allocation) => {
                    stats.optimal_ii = ii == min_ii && complete;
                    stats.buffers = buffers;
                    stats.solve_time = started.elapsed();
                    return Ok(MostPipelined {
                        body: lp.clone(),
                        schedule,
                        allocation,
                        stats,
                    });
                }
                AllocOutcome::Failed { .. } => {
                    // MOST has no spilling; try a larger II (more slack,
                    // fewer overlapped stages) before falling back.
                    continue;
                }
            }
        }
    }
    stats.solve_time = started.elapsed();
    let mut r = fallback_or_fail(lp, machine, opts, min_ii, max_ii, stats.deadline_hit);
    if let Ok(p) = &mut r {
        p.stats.min_ii = stats.min_ii;
        p.stats.nodes = stats.nodes;
        p.stats.pivots = stats.pivots;
        p.stats.solves = stats.solves;
        p.stats.deadline_hit = stats.deadline_hit;
        p.stats.iis_tried = stats.iis_tried;
        p.stats.solve_time = stats.solve_time;
        p.stats.alloc_ns = p.stats.alloc_ns.saturating_add(stats.alloc_ns);
    }
    r
}

/// §4.4: "instead of falling back to the single block scheduler … it
/// instead falls back to the MIPSpro pipeliner itself."
fn fallback_or_fail(
    lp: &Loop,
    machine: &Machine,
    opts: &MostOptions,
    min_ii: u32,
    max_ii: u32,
    deadline_hit: bool,
) -> Result<MostPipelined, MostError> {
    if opts.fallback {
        let heur_opts = HeurOptions {
            cancel: opts.cancel.clone(),
            ..HeurOptions::default()
        };
        if let Ok(h) = swp_heur::pipeline(lp, machine, &heur_opts) {
            swp_obs::count(swp_obs::Counter::MostFallbacks, 1);
            let stats = MostStats {
                fell_back: true,
                deadline_hit,
                alloc_ns: h.stats.alloc_ns,
                ..MostStats::default()
            };
            return Ok(MostPipelined {
                body: h.body,
                schedule: h.schedule,
                allocation: h.allocation,
                stats,
            });
        }
    }
    Err(MostError::NoSchedule {
        min_ii,
        max_ii,
        deadline_hit,
    })
}

/// Solve one II: feasibility first, then optional buffer minimization.
/// Returns `(schedule, buffers, search_complete)`.
fn solve_at_ii(
    lp: &Loop,
    ddg: &Ddg,
    machine: &Machine,
    ii: u32,
    opts: &MostOptions,
    orders: &[Vec<swp_ir::OpId>],
    stats: &mut MostStats,
) -> Option<(Schedule, Option<u32>, bool)> {
    // Adjustment 1: resource-constrained feasibility as a filter.
    let feas_model = build_model(lp, ddg, machine, ii, Objective::Feasibility);
    let mut feasible: Option<(Vec<f64>, bool)> = None;
    for order in orders {
        let solve_opts = SolveOptions {
            stop_at_first: true,
            node_limit: opts.node_limit,
            pivot_limit: opts.pivot_limit,
            time_limit: opts.time_limit,
            branch_order: Some(feas_model.branch_order(order)),
            // Fixing the LP-preferred a[i][t] to 1 first turns the DFS
            // dive into a priority-guided list scheduler (see
            // SolveOptions docs).
            branch_groups: Some(feas_model.branch_groups(order)),
            branch_up_first: true,
            cancel: opts.cancel.clone(),
            ..SolveOptions::default()
        };
        stats.solves += 1;
        let r = solve_ilp(&feas_model.model, &solve_opts);
        stats.nodes += r.nodes;
        stats.pivots += r.pivots;
        stats.deadline_hit |= r.deadline_hit;
        match r.status {
            Status::Optimal | Status::Feasible => {
                let complete = r.status == Status::Optimal || r.solution.is_some();
                feasible = Some((
                    r.solution.expect("status implies solution").values,
                    complete,
                ));
                break;
            }
            Status::Infeasible => {
                // Proven infeasible: no other order will change that.
                return None;
            }
            Status::Unknown => continue, // try the next priority order
        }
    }
    let (feas_values, complete) = feasible?;

    if !opts.minimize_buffers {
        let times = feas_model.extract_times(&feas_values);
        return Some((Schedule::new(ii, times), None, complete));
    }

    // Adjustment 2: buffer minimization, accepting the best incumbent.
    let buf_model = build_model(lp, ddg, machine, ii, Objective::MinBuffers);
    let mut best: Option<(Vec<f64>, Option<u32>)> = None;
    for order in orders {
        let solve_opts = SolveOptions {
            node_limit: opts.node_limit,
            pivot_limit: opts.pivot_limit,
            time_limit: opts.time_limit,
            branch_order: Some(buf_model.branch_order(order)),
            branch_groups: Some(buf_model.branch_groups(order)),
            branch_up_first: true,
            cancel: opts.cancel.clone(),
            // Seed the search with the feasibility schedule (extended by
            // its implied buffer counts — the two models share the
            // schedule-variable prefix): the solve starts with an
            // incumbent and an armed cutoff, while branching stays
            // LP-guided. Steering the dive toward this solution instead
            // would anchor a truncated search at the feasibility dive's
            // sprawled leaf, which is usually far worse than where the
            // buffer relaxation points.
            warm_start: Some(buf_model.warm_start_from(lp, &feas_values)),
            ..SolveOptions::default()
        };
        stats.solves += 1;
        let r = solve_ilp(&buf_model.model, &solve_opts);
        stats.nodes += r.nodes;
        stats.pivots += r.pivots;
        stats.deadline_hit |= r.deadline_hit;
        if let Some(sol) = r.solution {
            let buffers = buf_model.total_buffers(&sol.values);
            best = Some((sol.values, buffers));
            break;
        }
        if r.status == Status::Infeasible {
            break; // cannot happen if feasibility held; defensive
        }
    }
    match best {
        Some((values, buffers)) => {
            let times = buf_model.extract_times(&values);
            Some((Schedule::new(ii, times), buffers, complete))
        }
        None => {
            // Accept the feasibility schedule (the paper's "if any").
            let times = feas_model.extract_times(&feas_values);
            Some((Schedule::new(ii, times), None, complete))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ir::LoopBuilder;

    fn saxpy() -> Loop {
        let mut b = LoopBuilder::new("saxpy");
        let a = b.invariant_f("a");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let xv = b.load(x, 0, 8);
        let yv = b.load(y, 0, 8);
        let r = b.fmadd(a, xv, yv);
        b.store(y, 0, 8, r);
        b.finish()
    }

    #[test]
    fn most_matches_min_ii_on_saxpy() {
        let m = Machine::r8000();
        let r = pipeline_most(&saxpy(), &m, &MostOptions::default()).expect("schedules");
        assert_eq!(r.ii(), 2);
        assert!(r.stats.optimal_ii);
        assert!(!r.stats.fell_back);
    }

    #[test]
    fn most_agrees_with_heuristic_ii() {
        // The paper's headline: the optimal technique only very rarely
        // beats the heuristic II. They must agree on these loops.
        let m = Machine::r8000();
        let mk_loops: Vec<Loop> = vec![saxpy(), {
            let mut b = LoopBuilder::new("dot");
            let x = b.array("x", 8);
            let y = b.array("y", 8);
            let xv = b.load(x, 0, 8);
            let yv = b.load(y, 0, 8);
            let s = b.carried_f("s");
            let s1 = b.fmadd(xv, yv, s.value());
            b.close(s, s1, 1);
            b.finish()
        }];
        for lp in mk_loops {
            let most = pipeline_most(&lp, &m, &MostOptions::default()).expect("most");
            let heur =
                swp_heur::pipeline(&lp, &m, &swp_heur::HeurOptions::default()).expect("heur");
            assert_eq!(most.ii(), heur.ii(), "loop {}", lp.name());
        }
    }

    #[test]
    fn no_fallback_and_tiny_budget_reports_failure_or_succeeds() {
        let m = Machine::r8000();
        let opts = MostOptions {
            node_limit: 1,
            fallback: false,
            time_limit: None,
            ..MostOptions::default()
        };
        // With a 1-node budget per solve the search is truncated; the
        // result must be an explicit error, never a bogus schedule.
        match pipeline_most(&saxpy(), &m, &opts) {
            Ok(r) => {
                let ddg = Ddg::build(&r.body, &m);
                assert_eq!(r.schedule.validate(&r.body, &ddg, &m), Ok(()));
            }
            Err(MostError::NoSchedule { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn fallback_engages_when_budget_exhausted() {
        let m = Machine::r8000();
        let opts = MostOptions {
            node_limit: 1,
            time_limit: None,
            ..MostOptions::default()
        };
        let r = pipeline_most(&saxpy(), &m, &opts).expect("fallback rescues");
        assert!(r.stats.fell_back);
        let ddg = Ddg::build(&r.body, &m);
        assert_eq!(r.schedule.validate(&r.body, &ddg, &m), Ok(()));
    }

    #[test]
    fn pivot_budget_truncates_deterministically() {
        // A pivot budget is a pure work measure: two runs of the same
        // input must do identical work and never set the wall-clock flag.
        let m = Machine::r8000();
        let opts = MostOptions {
            pivot_limit: 40,
            time_limit: None,
            loop_time_limit: None,
            fallback: false,
            ..MostOptions::default()
        };
        let a = pipeline_most(&saxpy(), &m, &opts);
        let b = pipeline_most(&saxpy(), &m, &opts);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.stats.pivots, y.stats.pivots);
                assert_eq!(x.stats.nodes, y.stats.nodes);
                assert!(!x.stats.deadline_hit);
                assert!(!y.stats.deadline_hit);
            }
            (Err(x), Err(y)) => {
                assert_eq!(x, y);
                assert!(matches!(
                    x,
                    MostError::NoSchedule {
                        deadline_hit: false,
                        ..
                    }
                ));
            }
            (a, b) => panic!("runs disagreed: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn empty_loop_is_error() {
        let m = Machine::r8000();
        let lp = LoopBuilder::new("e").finish();
        assert!(matches!(
            pipeline_most(&lp, &m, &MostOptions::default()),
            Err(MostError::EmptyLoop)
        ));
    }

    #[test]
    fn buffer_minimization_does_not_worsen_ii() {
        let m = Machine::r8000();
        let with = pipeline_most(&saxpy(), &m, &MostOptions::default()).expect("with");
        let without = pipeline_most(
            &saxpy(),
            &m,
            &MostOptions {
                minimize_buffers: false,
                ..MostOptions::default()
            },
        )
        .expect("without");
        assert_eq!(with.ii(), without.ii());
        assert!(with.stats.buffers.is_some());
    }
}
