//! The ILP formulation of resource-constrained modulo scheduling
//! (\[GoAlGa94a\], \[AlGoGa95\]) and the buffer-minimization objective the
//! McGill team adopted for this study (§3.3, adjustment 2).

use swp_ilp::{Model, Sense, VarId};
use swp_ir::{Ddg, Loop, OpId};
use swp_machine::Machine;

/// Handle to the variables of a scheduling model.
#[derive(Debug, Clone)]
pub struct SchedulingModel {
    /// The ILP model.
    pub model: Model,
    /// `a[i][t]`: op `i` occupies kernel row `t`.
    pub row_vars: Vec<Vec<VarId>>,
    /// `k[i]`: pipeline stage of op `i`.
    pub stage_vars: Vec<VarId>,
    /// Per-value buffer count variables (buffer objective only).
    pub buffer_vars: Vec<Option<VarId>>,
    /// The II the model was built for.
    pub ii: u32,
}

/// Objective selector for [`build_model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Resource-constrained feasibility (minimize Σ stages to keep the
    /// relaxation tight; the first integral solution is accepted).
    Feasibility,
    /// Minimize the total FIFO buffers of loop-carried and cross-stage
    /// values — §3.3's replacement for full register optimality. "This
    /// objective function directly translates into the reduction of the
    /// number of iterations overlapped in the steady state."
    MinBuffers,
}

/// Upper bound on pipeline stages: enough for any schedule worth having.
fn stage_bound(lp: &Loop, ddg: &Ddg, machine: &Machine, ii: u32) -> f64 {
    let total_latency: i64 = lp
        .ops()
        .iter()
        .map(|o| i64::from(machine.latency(o.class)))
        .sum();
    let _ = ddg;
    ((total_latency / i64::from(ii)) + 2) as f64
}

/// Build the modulo-scheduling ILP at a fixed II.
///
/// Variables: binary `a[i][t]` with `Σ_t a[i][t] = 1`; integer stages
/// `k[i]`; issue time `σ_i = Σ_t t·a[i][t] + II·k[i]`.
///
/// Constraints:
/// - assignment rows (one row per op),
/// - modulo resources: for every kernel row and unit class, the
///   reservations of all ops landing there fit the unit count
///   (multi-cycle reservations of unpipelined ops included),
/// - dependences: `σ_j − σ_i ≥ latency − II·distance`,
/// - stage bounds `k[i] ≤ K` to keep the search finite,
/// - with [`Objective::MinBuffers`]: integer `b_v` per defined-and-used
///   value with `II·b_v ≥ σ_use + II·distance − σ_def` for every use.
pub fn build_model(
    lp: &Loop,
    ddg: &Ddg,
    machine: &Machine,
    ii: u32,
    objective: Objective,
) -> SchedulingModel {
    let n = lp.len();
    let mut model = Model::new(Sense::Minimize);
    let iif = f64::from(ii);

    let row_vars: Vec<Vec<VarId>> = (0..n)
        .map(|i| {
            (0..ii)
                .map(|t| model.binary(&format!("a_{i}_{t}")))
                .collect()
        })
        .collect();
    let stage_vars: Vec<VarId> = (0..n).map(|i| model.integer(&format!("k_{i}"))).collect();

    // Assignment.
    for vars in &row_vars {
        model.add_eq(vars.iter().map(|&v| (v, 1.0)), 1.0);
    }
    // Stage bound.
    let kmax = stage_bound(lp, ddg, machine, ii);
    for &k in &stage_vars {
        model.add_le([(k, 1.0)], kmax);
    }
    // Modulo resources: row r, class c: Σ_i Σ_{d<dur_i} a[i][(r−d) mod II] ≤ units.
    for class in swp_machine::ResourceClass::ALL {
        let units = f64::from(machine.units(class));
        for r in 0..ii {
            let mut terms: Vec<(VarId, f64)> = Vec::new();
            for (i, op) in lp.ops().iter().enumerate() {
                for res in machine.reservations(op.class) {
                    if res.class != class {
                        continue;
                    }
                    for d in 0..res.duration {
                        let t = (i64::from(r) - i64::from(d)).rem_euclid(i64::from(ii)) as usize;
                        terms.push((row_vars[i][t], 1.0));
                    }
                }
            }
            if !terms.is_empty() {
                model.add_le(terms, units);
            }
        }
    }
    // Dependences: σ_j − σ_i ≥ lat − II·dist.
    for e in ddg.edges() {
        let (i, j) = (e.from.index(), e.to.index());
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        for (t, &v) in row_vars[j].iter().enumerate() {
            terms.push((v, t as f64));
        }
        terms.push((stage_vars[j], iif));
        for (t, &v) in row_vars[i].iter().enumerate() {
            terms.push((v, -(t as f64)));
        }
        terms.push((stage_vars[i], -iif));
        model.add_ge(
            terms,
            (e.latency - i64::from(ii) * i64::from(e.distance)) as f64,
        );
    }

    // Objective.
    let mut buffer_vars: Vec<Option<VarId>> = vec![None; lp.values().len()];
    match objective {
        Objective::Feasibility => {
            model.set_objective(stage_vars.iter().map(|&k| (k, 1.0)));
        }
        Objective::MinBuffers => {
            let uses = lp.uses();
            let mut obj: Vec<(VarId, f64)> = Vec::new();
            for (vi, info) in lp.values().iter().enumerate() {
                let Some(def) = info.def else { continue };
                if uses[vi].is_empty() {
                    continue;
                }
                let b = model.integer(&format!("buf_{vi}"));
                buffer_vars[vi] = Some(b);
                obj.push((b, 1.0));
                // A finite upper bound (any schedule fits within the
                // stage bound plus the longest dependence distance): it
                // folds into a context bound, and a variable with two
                // finite bounds can always be bound-flipped back to dual
                // feasibility after branching — unbounded buffer columns
                // were the one thing forcing node re-solves through a
                // cold Phase 1.
                let max_dist = uses[vi]
                    .iter()
                    .map(|&(user, idx)| lp.op(user).operands[idx].distance)
                    .max()
                    .unwrap_or(0);
                model.add_le([(b, 1.0)], kmax + f64::from(max_dist) + 2.0);
                for &(user, idx) in &uses[vi] {
                    let dist = lp.op(user).operands[idx].distance;
                    // II·b ≥ σ_user + II·dist − σ_def
                    let mut terms: Vec<(VarId, f64)> = vec![(b, iif)];
                    for (t, &v) in row_vars[user.index()].iter().enumerate() {
                        terms.push((v, -(t as f64)));
                    }
                    terms.push((stage_vars[user.index()], -iif));
                    for (t, &v) in row_vars[def.index()].iter().enumerate() {
                        terms.push((v, t as f64));
                    }
                    terms.push((stage_vars[def.index()], iif));
                    model.add_ge(terms, iif * f64::from(dist));
                }
            }
            model.set_objective(obj);
        }
    }
    SchedulingModel {
        model,
        row_vars,
        stage_vars,
        buffer_vars,
        ii,
    }
}

impl SchedulingModel {
    /// Extract issue times from an ILP solution.
    pub fn extract_times(&self, values: &[f64]) -> Vec<i64> {
        let ii = i64::from(self.ii);
        self.row_vars
            .iter()
            .zip(&self.stage_vars)
            .map(|(rows, &k)| {
                let t = rows
                    .iter()
                    .position(|&v| values[v.index()] > 0.5)
                    .expect("every op is assigned a row") as i64;
                let stage = values[k.index()].round() as i64;
                t + ii * stage
            })
            .collect()
    }

    /// Branch priority for the solver: row variables of ops in the given
    /// scheduling priority order, then stages in the same order — the
    /// §3.3(3) adjustment that made MOST solve real loops.
    pub fn branch_order(&self, op_order: &[OpId]) -> Vec<VarId> {
        let mut order = Vec::with_capacity(self.row_vars.len() * self.ii as usize);
        for &op in op_order {
            order.extend(self.row_vars[op.index()].iter().copied());
        }
        for &op in op_order {
            order.push(self.stage_vars[op.index()]);
        }
        order
    }

    /// SOS1 branch groups for the solver: each op contributes its row
    /// variables (one group — the solver branches on the LP-preferred
    /// slot) immediately followed by its stage variable (a singleton
    /// group), in scheduling priority order. Interleaving the stage with
    /// the slots pins each op's full issue time `σ = t + II·k` before the
    /// next op is placed, so a conflicting placement goes infeasible at
    /// the op that caused it and backtracking stays local — leaving the
    /// stages to the end lets the dive place every slot greedily and only
    /// then discover the stages cannot be reconciled, dozens of levels up.
    pub fn branch_groups(&self, op_order: &[OpId]) -> Vec<Vec<VarId>> {
        let mut groups = Vec::with_capacity(2 * op_order.len());
        for &op in op_order {
            groups.push(self.row_vars[op.index()].clone());
            groups.push(vec![self.stage_vars[op.index()]]);
        }
        groups
    }

    /// Extend a feasibility-model solution to a full warm-start vector
    /// for this buffer model: the two models share the schedule-variable
    /// prefix (same construction order), so only the appended buffer
    /// variables are missing, and each takes its implied minimal value
    /// `b_v = max_u ⌈(σ_u + II·d_u − σ_def)/II⌉`.
    pub fn warm_start_from(&self, lp: &Loop, feas_values: &[f64]) -> Vec<f64> {
        let mut full = feas_values.to_vec();
        full.resize(self.model.num_vars(), 0.0);
        let times = self.extract_times(&full);
        let ii = i64::from(self.ii);
        let uses = lp.uses();
        for (vi, info) in lp.values().iter().enumerate() {
            let (Some(b), Some(def)) = (self.buffer_vars[vi], info.def) else {
                continue;
            };
            let sd = times[def.index()];
            let need = uses[vi]
                .iter()
                .map(|&(user, idx)| {
                    let dist = i64::from(lp.op(user).operands[idx].distance);
                    let span = times[user.index()] + ii * dist - sd;
                    (span + ii - 1).div_euclid(ii)
                })
                .max()
                .unwrap_or(0)
                .max(0);
            full[b.index()] = need as f64;
        }
        full
    }

    /// Total buffers in a solution (buffer objective only).
    pub fn total_buffers(&self, values: &[f64]) -> Option<u32> {
        let mut total = 0.0;
        let mut any = false;
        for b in self.buffer_vars.iter().flatten() {
            total += values[b.index()];
            any = true;
        }
        any.then_some(total.round() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ilp::{solve_ilp, SolveOptions, Status};
    use swp_ir::{LoopBuilder, Schedule};
    use swp_machine::Machine;

    fn solve_feasible(lp: &swp_ir::Loop, ii: u32) -> Option<Schedule> {
        let m = Machine::r8000();
        let ddg = Ddg::build(lp, &m);
        let sm = build_model(lp, &ddg, &m, ii, Objective::Feasibility);
        let r = solve_ilp(
            &sm.model,
            &SolveOptions {
                stop_at_first: true,
                node_limit: 50_000,
                ..SolveOptions::default()
            },
        );
        match r.status {
            Status::Optimal | Status::Feasible => {
                let sol = r.solution.expect("has solution");
                Some(Schedule::new(ii, sm.extract_times(&sol.values)))
            }
            _ => None,
        }
    }

    #[test]
    fn saxpy_feasible_at_min_ii() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("saxpy");
        let a = b.invariant_f("a");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let xv = b.load(x, 0, 8);
        let yv = b.load(y, 0, 8);
        let r = b.fmadd(a, xv, yv);
        b.store(y, 0, 8, r);
        let lp = b.finish();
        let ddg = Ddg::build(&lp, &m);
        assert_eq!(ddg.min_ii(), 2);
        let s = solve_feasible(&lp, 2).expect("feasible at MinII");
        assert_eq!(s.validate(&lp, &ddg, &m), Ok(()));
    }

    #[test]
    fn below_min_ii_is_infeasible() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v1 = b.load(x, 0, 8);
        let v2 = b.load(x, 800, 8);
        let v3 = b.load(x, 1600, 8);
        let s = b.fadd(v1, v2);
        let s2 = b.fadd(s, v3);
        b.store(x, 80000, 8, s2);
        let lp = b.finish();
        // 4 memory refs on 2 pipes: II=1 impossible.
        assert!(solve_feasible(&lp, 1).is_none());
        let got = solve_feasible(&lp, 2).expect("II=2 works");
        assert_eq!(got.validate(&lp, &Ddg::build(&lp, &m), &m), Ok(()));
    }

    #[test]
    fn recurrence_constrains_ilp_too() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("sum");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let s1 = b.fadd(s.value(), v);
        b.close(s, s1, 1);
        let lp = b.finish();
        assert!(solve_feasible(&lp, 3).is_none(), "below RecMII");
        assert!(solve_feasible(&lp, 4).is_some());
        let _ = m;
    }

    #[test]
    fn buffer_objective_reduces_overlap() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("chain");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.fmul(v, v);
        let u = b.fadd(w, w);
        b.store(y, 0, 8, u);
        let lp = b.finish();
        let ddg = Ddg::build(&lp, &m);
        let ii = ddg.min_ii();
        let sm = build_model(&lp, &ddg, &m, ii, Objective::MinBuffers);
        let r = solve_ilp(
            &sm.model,
            &SolveOptions {
                node_limit: 100_000,
                ..SolveOptions::default()
            },
        );
        assert_eq!(r.status, Status::Optimal);
        let sol = r.solution.expect("optimal");
        let times = sm.extract_times(&sol.values);
        let s = Schedule::new(ii, times);
        assert_eq!(s.validate(&lp, &ddg, &m), Ok(()));
        // The chain load→mul→add→store at latencies 4+4+1: minimal buffer
        // schedule packs ops as close as dependences allow.
        let buffers = sm.total_buffers(&sol.values).expect("buffer objective");
        assert!(
            buffers >= 3,
            "each link needs at least one buffer: {buffers}"
        );
    }
}
