//! Cooperative cancellation for racing schedulers.
//!
//! A [`CancelToken`] is a cloneable flag a portfolio driver hands to every
//! racing backend; the backends poll it at the same granularity as their
//! wall-clock deadline checks (per simplex pivot batch, per backtrack, per
//! CDCL conflict) and abandon the search promptly once it fires. The token
//! lives here rather than in a scheduler crate because `swp-obs` is the one
//! crate every backend already depends on.
//!
//! Cancellation is *host-timing-dependent* by nature — whether a racer was
//! cancelled before finishing depends on wall clock — so every backend
//! reports a cancelled search the same way it reports a wall-clock deadline
//! hit, and the schedule cache refuses to memoize such results.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag.
///
/// The `Default` token is *inert*: it can never fire, costs nothing to
/// check, and allocates nothing — options structs embed one so that the
/// non-racing paths stay untouched.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Option<Arc<AtomicBool>>,
}

impl CancelToken {
    /// A live token that can later be [`cancel`](Self::cancel)led.
    pub fn new() -> CancelToken {
        CancelToken {
            flag: Some(Arc::new(AtomicBool::new(false))),
        }
    }

    /// The inert token (same as `Default`): never fires.
    pub fn never() -> CancelToken {
        CancelToken { flag: None }
    }

    /// Whether this token can fire at all (i.e. is not the inert default).
    /// Pollers use it to decide whether periodic checks are worth paying.
    pub fn is_real(&self) -> bool {
        self.flag.is_some()
    }

    /// Fire the flag. All clones observe it; inert tokens ignore it.
    pub fn cancel(&self) {
        if let Some(f) = &self.flag {
            f.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the flag has fired.
    pub fn is_cancelled(&self) -> bool {
        self.flag
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_is_inert() {
        let t = CancelToken::default();
        assert!(!t.is_real());
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(!t.is_cancelled(), "inert tokens never fire");
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(t.is_real() && !t.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
        assert!(u.is_cancelled());
    }

    #[test]
    fn independent_tokens_do_not_share() {
        let t = CancelToken::new();
        let u = CancelToken::new();
        t.cancel();
        assert!(!u.is_cancelled());
    }
}
