//! `swp-obs`: compiler-wide telemetry — spans, counters, histograms.
//!
//! Design goals, in priority order:
//!
//! 1. **Zero-cost when disabled.** Instrumented code calls free functions
//!    ([`count`], [`observe`], [`span`]) that read one thread-local; with no
//!    collector installed they return immediately. Subsystems flush
//!    aggregate stats once per compile phase, never per inner-loop step, so
//!    even the thread-local read happens O(phases) not O(pivots).
//! 2. **Deterministic aggregation.** [`Class::Exact`] counters measure
//!    algorithmic work and must total bit-identically at any `--threads N`
//!    (enforced by `tests/telemetry.rs`). Wall-clock metrics are registered
//!    as [`Class::Timing`] and exempted.
//! 3. **Thread-aware by construction.** The collector is a shared
//!    `Arc<Collector>` of atomics; worker threads installed with the same
//!    [`Telemetry`] handle aggregate into one place, and spans carry a
//!    stable per-thread id for the Chrome trace rows.
//!
//! The handle is ambient, not threaded through every signature: callers
//! [`Telemetry::install`] it for a scope (worker thread, cache leader) and
//! deep subsystems (`swp-ilp`, `swp-heur`, `swp-most`, `swp-verify`) emit
//! through the free functions without knowing who is listening.

mod cancel;
mod json;
mod registry;
mod trace;

pub use cancel::CancelToken;
pub use json::{parse as parse_json, Value as JsonValue, Writer as JsonWriter};
pub use registry::{Class, Counter, Histo};
pub use trace::{validate_chrome_trace, Span};

use registry::MAX_BUCKETS;
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use trace::SpanEvent;

/// One histogram's storage: fixed buckets plus count/sum/max gauges.
#[derive(Debug)]
struct HistCell {
    buckets: [AtomicU64; MAX_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCell {
    fn new() -> Self {
        HistCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn observe(&self, histo: Histo, value: u64) {
        let edges = histo.edges();
        let idx = edges.partition_point(|&e| e < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }
}

/// Shared metric storage behind a [`Telemetry`] handle.
#[derive(Debug)]
pub(crate) struct Collector {
    pub(crate) epoch: Instant,
    tracing: bool,
    counters: [AtomicU64; Counter::COUNT],
    histograms: [HistCell; Histo::COUNT],
    pub(crate) spans: Mutex<Vec<SpanEvent>>,
}

impl Collector {
    fn new(tracing: bool) -> Self {
        Collector {
            epoch: Instant::now(),
            tracing,
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            histograms: std::array::from_fn(|_| HistCell::new()),
            spans: Mutex::new(Vec::new()),
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<Collector>>> = const { RefCell::new(None) };
}

/// A cloneable handle to one telemetry scope.
///
/// The default handle is disabled: installing it (or never installing
/// anything) leaves every instrumentation point as a cheap thread-local
/// check. [`Telemetry::new`] collects counters and histograms;
/// [`Telemetry::with_tracing`] additionally records spans.
#[derive(Clone, Default)]
pub struct Telemetry {
    collector: Option<Arc<Collector>>,
}

impl Telemetry {
    /// A handle that collects nothing (same as `Default`).
    pub fn disabled() -> Self {
        Telemetry { collector: None }
    }

    /// Collect counters and histograms, but no spans.
    pub fn new() -> Self {
        Telemetry {
            collector: Some(Arc::new(Collector::new(false))),
        }
    }

    /// Collect counters, histograms, and spans (Chrome trace export).
    pub fn with_tracing() -> Self {
        Telemetry {
            collector: Some(Arc::new(Collector::new(true))),
        }
    }

    /// Whether metrics are being collected at all.
    pub fn is_enabled(&self) -> bool {
        self.collector.is_some()
    }

    /// Whether spans are being recorded.
    pub fn is_tracing(&self) -> bool {
        self.collector.as_ref().is_some_and(|c| c.tracing)
    }

    /// Make this handle the ambient collector for the current thread until
    /// the guard drops (the previous collector, if any, is restored).
    /// Nested installs are fine; each guard restores what it displaced.
    pub fn install(&self) -> InstallGuard {
        let prev = CURRENT.with(|c| c.replace(self.collector.clone()));
        InstallGuard { prev }
    }

    /// Snapshot all counter values.
    pub fn counters(&self) -> CounterSnapshot {
        let values = match &self.collector {
            Some(c) => Counter::ALL
                .iter()
                .map(|k| c.counters[k.index()].load(Ordering::Relaxed))
                .collect(),
            None => vec![0; Counter::COUNT],
        };
        CounterSnapshot { values }
    }

    /// Snapshot one histogram.
    pub fn histogram(&self, histo: Histo) -> HistogramSnapshot {
        let n_buckets = histo.edges().len() + 1;
        match &self.collector {
            Some(c) => {
                let cell = &c.histograms[histo.index()];
                HistogramSnapshot {
                    histo,
                    buckets: cell.buckets[..n_buckets]
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                    count: cell.count.load(Ordering::Relaxed),
                    sum: cell.sum.load(Ordering::Relaxed),
                    max: cell.max.load(Ordering::Relaxed),
                }
            }
            None => HistogramSnapshot {
                histo,
                buckets: vec![0; n_buckets],
                count: 0,
                sum: 0,
                max: 0,
            },
        }
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.collector
            .as_ref()
            .map_or(0, |c| c.spans.lock().unwrap().len())
    }

    /// Names of spans recorded so far (export order).
    pub fn span_names(&self) -> Vec<&'static str> {
        self.collector.as_ref().map_or_else(Vec::new, |c| {
            c.spans.lock().unwrap().iter().map(|e| e.name).collect()
        })
    }

    /// Export recorded spans as Chrome `trace_event` JSON.
    pub fn chrome_trace_json(&self) -> String {
        match &self.collector {
            Some(c) => trace::chrome_trace_json(&c.spans.lock().unwrap()),
            None => trace::chrome_trace_json(&[]),
        }
    }

    /// Dead-metric lint: every `Exact` metric that is registered but was
    /// never incremented/observed. `Timing` metrics are exempt (whether an
    /// in-flight wait happens is scheduling luck, not coverage).
    pub fn dead_exact_metrics(&self) -> Vec<&'static str> {
        let counters = self.counters();
        let mut dead: Vec<&'static str> = Counter::ALL
            .iter()
            .filter(|c| c.class() == Class::Exact && counters.get(**c) == 0)
            .map(|c| c.name())
            .collect();
        dead.extend(
            Histo::ALL
                .iter()
                .filter(|h| h.class() == Class::Exact && self.histogram(**h).count == 0)
                .map(|h| h.name()),
        );
        dead
    }

    /// Render a human-readable compile report: counters grouped by
    /// subsystem, then histogram tables.
    pub fn render_report(&self) -> String {
        let counters = self.counters();
        let mut out = String::new();
        out.push_str("compile report (swp-obs)\n");
        out.push_str("========================\n\ncounters\n");
        let mut subsystem = "";
        for c in Counter::ALL {
            if c.subsystem() != subsystem {
                subsystem = c.subsystem();
                out.push_str(&format!("  [{subsystem}]\n"));
            }
            let class = match c.class() {
                Class::Exact => "",
                Class::Timing => "  (timing)",
            };
            out.push_str(&format!(
                "    {:<24} {:>12}{}\n",
                c.name(),
                counters.get(*c),
                class
            ));
        }
        out.push_str("\nhistograms\n");
        for h in Histo::ALL {
            let snap = self.histogram(*h);
            out.push_str(&format!(
                "  {} ({}): count={} mean={:.1} max={}\n",
                h.name(),
                h.unit(),
                snap.count,
                snap.mean(),
                snap.max
            ));
            out.push_str("    ");
            for (i, n) in snap.buckets.iter().enumerate() {
                match h.edges().get(i) {
                    Some(edge) => out.push_str(&format!("<={edge}: {n}  ")),
                    None => out.push_str(&format!(">{}: {n}", h.edges().last().unwrap())),
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = match &self.collector {
            None => "disabled",
            Some(c) if c.tracing => "tracing",
            Some(_) => "counters",
        };
        write!(f, "Telemetry({state})")
    }
}

/// Restores the previously installed collector on drop.
#[must_use = "dropping the guard immediately uninstalls the telemetry"]
#[derive(Debug)]
pub struct InstallGuard {
    prev: Option<Arc<Collector>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            *c.borrow_mut() = self.prev.take();
        });
    }
}

/// Point-in-time values of every registered counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    values: Vec<u64>,
}

impl CounterSnapshot {
    /// Value of one counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.values[counter.index()]
    }

    /// Per-counter difference vs. an earlier snapshot of the same handle.
    pub fn minus(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            values: self
                .values
                .iter()
                .zip(&earlier.values)
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
        }
    }

    /// `(counter, value)` pairs in registry order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL.iter().map(|c| (*c, self.get(*c)))
    }

    /// Equality over `Exact` counters only — the cross-thread determinism
    /// relation (timing-class counters may legitimately differ).
    pub fn exact_eq(&self, other: &CounterSnapshot) -> bool {
        Counter::ALL
            .iter()
            .filter(|c| c.class() == Class::Exact)
            .all(|c| self.get(*c) == other.get(*c))
    }
}

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub histo: Histo,
    /// Finite buckets in edge order, then the overflow bucket.
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Add `n` to a counter on the ambient collector (no-op when disabled).
#[inline]
pub fn count(counter: Counter, n: u64) {
    if n == 0 {
        return;
    }
    CURRENT.with(|cell| {
        if let Some(c) = cell.borrow().as_ref() {
            c.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
        }
    });
}

/// Record one histogram observation on the ambient collector.
#[inline]
pub fn observe(histo: Histo, value: u64) {
    CURRENT.with(|cell| {
        if let Some(c) = cell.borrow().as_ref() {
            c.histograms[histo.index()].observe(histo, value);
        }
    });
}

/// Whether an ambient collector is installed on this thread.
#[inline]
pub fn enabled() -> bool {
    CURRENT.with(|cell| cell.borrow().is_some())
}

/// Open a span on the ambient collector. Inert (and allocation-free)
/// unless a tracing collector is installed.
#[inline]
pub fn span(name: &'static str) -> Span {
    CURRENT.with(|cell| match cell.borrow().as_ref() {
        Some(c) if c.tracing => Span::active(Arc::clone(c), name),
        _ => Span::disabled(),
    })
}

/// Run `f` under a span and return its result plus elapsed nanoseconds.
///
/// The clock always runs — callers feed the duration into compile stats —
/// but the span itself is inert unless tracing is installed.
#[inline]
pub fn timed_ns<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, u64) {
    let start = Instant::now();
    let guard = span(name);
    let result = f();
    drop(guard);
    (result, start.elapsed().as_nanos() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_collects_nothing() {
        let t = Telemetry::disabled();
        let _g = t.install();
        count(Counter::HeurBacktracks, 5);
        observe(Histo::MaxLive, 9);
        let _s = span("compile");
        assert!(!t.is_enabled());
        assert_eq!(t.counters().get(Counter::HeurBacktracks), 0);
        assert_eq!(t.histogram(Histo::MaxLive).count, 0);
        assert_eq!(t.span_count(), 0);
        assert!(!enabled());
    }

    #[test]
    fn counters_and_histograms_aggregate() {
        let t = Telemetry::new();
        let _g = t.install();
        count(Counter::IlpPivots, 3);
        count(Counter::IlpPivots, 4);
        count(Counter::IlpPivots, 0); // no-op, still fine
        observe(Histo::MaxLive, 3);
        observe(Histo::MaxLive, 5);
        observe(Histo::MaxLive, 1000);
        let snap = t.counters();
        assert_eq!(snap.get(Counter::IlpPivots), 7);
        assert_eq!(snap.get(Counter::IlpNodes), 0);
        let h = t.histogram(Histo::MaxLive);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1008);
        assert_eq!(h.max, 1000);
        // 3 and 5 both land in the first bucket (<=4 is edge 0? 3<=4 yes,
        // 5 goes to <=8), 1000 overflows.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(*h.buckets.last().unwrap(), 1);
        assert!(!t.is_tracing());
        assert_eq!(t.span_count(), 0, "counters-only handle records no spans");
    }

    #[test]
    fn install_guard_restores_previous_collector() {
        let outer = Telemetry::new();
        let inner = Telemetry::new();
        let _g1 = outer.install();
        count(Counter::CacheHits, 1);
        {
            let _g2 = inner.install();
            count(Counter::CacheHits, 10);
        }
        count(Counter::CacheHits, 2);
        assert_eq!(outer.counters().get(Counter::CacheHits), 3);
        assert_eq!(inner.counters().get(Counter::CacheHits), 10);
    }

    #[test]
    fn same_handle_aggregates_across_threads() {
        let t = Telemetry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = t.clone();
                scope.spawn(move || {
                    let _g = t.install();
                    for _ in 0..1000 {
                        count(Counter::HeurPlacements, 1);
                    }
                    observe(Histo::IiMinusMii, 2);
                });
            }
        });
        assert_eq!(t.counters().get(Counter::HeurPlacements), 4000);
        assert_eq!(t.histogram(Histo::IiMinusMii).count, 4);
    }

    #[test]
    fn spans_export_as_valid_chrome_trace() {
        let t = Telemetry::with_tracing();
        let _g = t.install();
        {
            let _outer = span("compile").with_s("loop", "saxpy").with_i("ops", 7);
            let _inner = span("heur.attempt").with_i("ii", 3);
        }
        assert_eq!(t.span_count(), 2);
        let json = t.chrome_trace_json();
        let n = validate_chrome_trace(&json).expect("schema-valid trace");
        assert_eq!(n, 2);
        // Inner span drops first, so it exports first.
        assert_eq!(t.span_names(), vec!["heur.attempt", "compile"]);
        let doc = parse_json(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let compile = events
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("compile"));
        let args = compile.unwrap().get("args").unwrap();
        assert_eq!(args.get("loop").unwrap().as_str(), Some("saxpy"));
        assert_eq!(args.get("ops").unwrap().as_number(), Some(7.0));
    }

    #[test]
    fn snapshot_minus_and_exact_eq() {
        let t = Telemetry::new();
        let _g = t.install();
        count(Counter::IlpNodes, 5);
        let before = t.counters();
        count(Counter::IlpNodes, 7);
        count(Counter::CacheInflightWaits, 3); // timing-class
        let after = t.counters();
        let delta = after.minus(&before);
        assert_eq!(delta.get(Counter::IlpNodes), 7);
        assert_eq!(delta.get(Counter::IlpSolves), 0);
        assert!(!after.exact_eq(&before));
        // Timing counters don't break exact equality.
        let mut timing_only = before.clone();
        timing_only.values[Counter::CacheInflightWaits.index()] += 99;
        count(Counter::IlpNodes, 0);
        assert!(before.exact_eq(&timing_only));
    }

    #[test]
    fn dead_metric_lint_reports_untouched_exact_metrics() {
        let t = Telemetry::new();
        let _g = t.install();
        let all_dead = t.dead_exact_metrics();
        assert!(all_dead.contains(&"ilp.pivots"));
        assert!(all_dead.contains(&"ii_minus_mii"));
        assert!(
            !all_dead.contains(&"cache.inflight_waits"),
            "timing metrics are exempt"
        );
        for c in Counter::ALL {
            count(*c, 1);
        }
        for h in Histo::ALL {
            observe(*h, 1);
        }
        assert!(t.dead_exact_metrics().is_empty());
    }

    #[test]
    fn timed_ns_measures_even_when_disabled() {
        let (value, ns) = timed_ns("sched.heur", || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            42
        });
        assert_eq!(value, 42);
        assert!(ns >= 1_000_000, "slept 2ms but measured {ns}ns");
    }

    #[test]
    fn report_renders_every_registered_metric() {
        let t = Telemetry::new();
        let report = t.render_report();
        for c in Counter::ALL {
            assert!(report.contains(c.name()), "missing {}", c.name());
        }
        for h in Histo::ALL {
            assert!(report.contains(h.name()), "missing {}", h.name());
        }
    }
}
