//! The metric registry: every counter and histogram the compiler can emit.
//!
//! Metrics are registered statically — an enum variant plus a metadata row —
//! so the collector can back them with a fixed array of atomics and the
//! dead-metric lint can enumerate what *should* have fired.

/// Determinism class of a metric.
///
/// `Exact` metrics count algorithmic work (nodes, pivots, backtracks …) and
/// must aggregate to bit-identical totals at any `--threads N` as long as the
/// compile options themselves are deterministic (no wall-clock budgets).
/// `Timing` metrics measure wall clock or scheduling luck (in-flight waits,
/// compile-time histograms) and are exempt from the cross-thread invariant
/// and from the dead-metric lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    Exact,
    Timing,
}

macro_rules! counters {
    ($( $variant:ident => ($name:literal, $subsystem:literal, $class:ident), )+) => {
        /// Every counter the compiler registers, across all subsystems.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum Counter {
            $($variant,)+
        }

        impl Counter {
            /// All registered counters, in registry order.
            pub const ALL: &'static [Counter] = &[$(Counter::$variant,)+];

            /// Number of registered counters.
            pub const COUNT: usize = Counter::ALL.len();

            /// Stable metric name, `subsystem.metric`.
            pub fn name(self) -> &'static str {
                match self {
                    $(Counter::$variant => $name,)+
                }
            }

            /// Owning subsystem (crate-level grouping for reports).
            pub fn subsystem(self) -> &'static str {
                match self {
                    $(Counter::$variant => $subsystem,)+
                }
            }

            /// Determinism class.
            pub fn class(self) -> Class {
                match self {
                    $(Counter::$variant => Class::$class,)+
                }
            }

            /// Index into the collector's counter array.
            pub fn index(self) -> usize {
                self as usize
            }
        }
    };
}

counters! {
    // swp-heur: the backtracking modulo scheduler.
    HeurAttempts => ("heur.attempts", "heur", Exact),
    HeurBacktracks => ("heur.backtracks", "heur", Exact),
    HeurPlacements => ("heur.placements", "heur", Exact),
    HeurIisTried => ("heur.iis_tried", "heur", Exact),
    HeurPairsFormed => ("heur.pairs_formed", "heur", Exact),
    HeurSpills => ("heur.spills", "heur", Exact),
    HeurSpillRounds => ("heur.spill_rounds", "heur", Exact),
    // swp-ilp: dual-simplex LP engine + branch & bound.
    IlpSolves => ("ilp.solves", "ilp", Exact),
    IlpNodes => ("ilp.nodes", "ilp", Exact),
    IlpPrunes => ("ilp.prunes", "ilp", Exact),
    IlpPivots => ("ilp.pivots", "ilp", Exact),
    IlpRefactorizations => ("ilp.refactorizations", "ilp", Exact),
    IlpBoundFlips => ("ilp.bound_flips", "ilp", Exact),
    IlpWarmStartHits => ("ilp.warm_start_hits", "ilp", Exact),
    // swp-most: the optimal scheduler's II ladder.
    MostIiSteps => ("most.ii_steps", "most", Exact),
    MostFallbacks => ("most.fallbacks", "most", Exact),
    // swp-sat: the CDCL difference-logic scheduler's II ladder.
    SatIiSteps => ("sat.ii_steps", "sat", Exact),
    SatDecisions => ("sat.decisions", "sat", Exact),
    SatConflicts => ("sat.conflicts", "sat", Exact),
    SatPropagations => ("sat.propagations", "sat", Exact),
    SatRestarts => ("sat.restarts", "sat", Exact),
    SatLearnedLiterals => ("sat.learned_literals", "sat", Exact),
    SatFallbacks => ("sat.fallbacks", "sat", Exact),
    // swp-core portfolio racing. The winner tallies are Exact because the
    // winner is chosen by fixed backend priority at join, never by wall
    // clock — identical inputs crown identical winners at any --threads N.
    PortfolioRaces => ("portfolio.races", "portfolio", Exact),
    PortfolioWinnerIlp => ("portfolio.winner.ilp", "portfolio", Exact),
    PortfolioWinnerSat => ("portfolio.winner.sat", "portfolio", Exact),
    PortfolioWinnerHeuristic => ("portfolio.winner.heuristic", "portfolio", Exact),
    PortfolioCancellations => ("portfolio.cancellations", "portfolio", Timing),
    // swp-core cache.
    CacheHits => ("cache.hits", "cache", Exact),
    CacheMisses => ("cache.misses", "cache", Exact),
    CacheInflightWaits => ("cache.inflight_waits", "cache", Timing),
    // swp-core degradation ladder.
    LadderDemotions => ("ladder.demotions", "ladder", Exact),
    LadderGateRejections => ("ladder.gate_rejections", "ladder", Exact),
    LadderPanicsCaught => ("ladder.panics_caught", "ladder", Exact),
    LadderChaosInjected => ("ladder.chaos_injected", "ladder", Exact),
    LadderChaosEscapes => ("ladder.chaos_escapes", "ladder", Exact),
    // swp-verify translation validation.
    VerifyAudits => ("verify.audits", "verify", Exact),
    VerifyFindings => ("verify.findings", "verify", Exact),
    // swp-ir mid-end pass pipeline.
    OptPassFold => ("opt.pass.fold", "opt", Exact),
    OptPassSimplify => ("opt.pass.simplify", "opt", Exact),
    OptPassStrength => ("opt.pass.strength", "opt", Exact),
    OptPassGvn => ("opt.pass.gvn", "opt", Exact),
    OptPassDce => ("opt.pass.dce", "opt", Exact),
    OptPassReassoc => ("opt.pass.reassoc", "opt", Exact),
    OptOpsRemoved => ("opt.ops_removed", "opt", Exact),
    OptRecMiiBefore => ("opt.recmii_before", "opt", Exact),
    OptRecMiiAfter => ("opt.recmii_after", "opt", Exact),
    // swp-serve: the fault-tolerant compile service. Admission counts are
    // Exact (one per loop admitted, independent of load); everything that
    // depends on scheduling luck — demotions under load, disk-store hits,
    // corrupt-entry recoveries, in-flight waits — is Timing.
    ServeAdmitted => ("serve.admitted", "serve", Exact),
    ServeDemotedByLoad => ("serve.demoted_by_load", "serve", Timing),
    ServeStoreHits => ("serve.store_hit", "serve", Timing),
    ServeStoreCorruptRecovered => ("serve.store_corrupt_recovered", "serve", Timing),
    ServeInflightWaits => ("serve.inflight", "serve", Timing),
}

macro_rules! histograms {
    ($( $variant:ident => ($name:literal, $class:ident, $unit:literal, $edges:expr), )+) => {
        /// Every histogram the compiler registers.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum Histo {
            $($variant,)+
        }

        impl Histo {
            /// All registered histograms, in registry order.
            pub const ALL: &'static [Histo] = &[$(Histo::$variant,)+];

            /// Number of registered histograms.
            pub const COUNT: usize = Histo::ALL.len();

            /// Stable metric name.
            pub fn name(self) -> &'static str {
                match self {
                    $(Histo::$variant => $name,)+
                }
            }

            /// Determinism class (same semantics as counters).
            pub fn class(self) -> Class {
                match self {
                    $(Histo::$variant => Class::$class,)+
                }
            }

            /// Unit label for reports.
            pub fn unit(self) -> &'static str {
                match self {
                    $(Histo::$variant => $unit,)+
                }
            }

            /// Inclusive upper edges of the finite buckets; one extra
            /// overflow bucket catches everything above the last edge.
            pub const fn edges(self) -> &'static [u64] {
                match self {
                    $(Histo::$variant => $edges,)+
                }
            }

            /// Index into the collector's histogram array.
            pub fn index(self) -> usize {
                self as usize
            }
        }
    };
}

histograms! {
    CompileTimeUs => ("compile_time_us", Timing, "us",
        &[100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
          100_000, 250_000, 500_000, 1_000_000, 4_000_000]),
    IiMinusMii => ("ii_minus_mii", Exact, "cycles", &[0, 1, 2, 3, 4, 6, 8, 16]),
    MaxLive => ("max_live", Exact, "regs", &[4, 8, 12, 16, 20, 24, 28, 32]),
    Buffers => ("buffers", Exact, "regs", &[2, 4, 8, 12, 16, 24, 32, 64]),
}

/// Maximum bucket count any histogram needs (finite edges + overflow).
pub(crate) const MAX_BUCKETS: usize = {
    let mut max = 0;
    let mut i = 0;
    while i < Histo::COUNT {
        let n = Histo::ALL[i].edges().len() + 1;
        if n > max {
            max = n;
        }
        i += 1;
    }
    max
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_prefixed() {
        for (i, a) in Counter::ALL.iter().enumerate() {
            assert!(a.name().starts_with(a.subsystem()), "{}", a.name());
            for b in &Counter::ALL[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
        for (i, a) in Histo::ALL.iter().enumerate() {
            for b in &Histo::ALL[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn histogram_edges_are_strictly_increasing() {
        for h in Histo::ALL {
            let e = h.edges();
            assert!(!e.is_empty());
            assert!(e.windows(2).all(|w| w[0] < w[1]), "{}", h.name());
            assert!(e.len() < MAX_BUCKETS);
        }
    }

    #[test]
    fn indices_match_positions() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, h) in Histo::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
        }
    }
}
