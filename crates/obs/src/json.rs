//! Minimal JSON support: an append-style writer and a strict validator.
//!
//! The build environment has no registry access, so there is no serde; the
//! trace exporter and the bench snapshot hand-write JSON through [`Writer`],
//! and CI checks the result with [`parse`] before trusting it.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a string into a JSON string literal (without quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A tiny streaming JSON writer. The caller drives structure; the writer
/// handles commas, quoting, and escaping.
#[derive(Debug, Default)]
pub struct Writer {
    out: String,
    need_comma: Vec<bool>,
}

impl Writer {
    pub fn new() -> Self {
        Self::default()
    }

    fn before_value(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            *need = true;
        }
    }

    pub fn begin_object(&mut self) -> &mut Self {
        self.before_value();
        self.out.push('{');
        self.need_comma.push(false);
        self
    }

    pub fn end_object(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.out.push('}');
        self
    }

    pub fn begin_array(&mut self) -> &mut Self {
        self.before_value();
        self.out.push('[');
        self.need_comma.push(false);
        self
    }

    pub fn end_array(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.out.push(']');
        self
    }

    /// Write an object key; the next call must write its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.before_value();
        self.out.push('"');
        escape_into(&mut self.out, k);
        self.out.push_str("\":");
        // The value that follows must not emit its own comma.
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
        self
    }

    pub fn string(&mut self, s: &str) -> &mut Self {
        self.before_value();
        self.out.push('"');
        escape_into(&mut self.out, s);
        self.out.push('"');
        self
    }

    pub fn uint(&mut self, v: u64) -> &mut Self {
        self.before_value();
        let _ = write!(self.out, "{v}");
        self
    }

    pub fn int(&mut self, v: i64) -> &mut Self {
        self.before_value();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Finite float; non-finite values are not representable in JSON and
    /// are written as null.
    pub fn float(&mut self, v: f64) -> &mut Self {
        self.before_value();
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
        self
    }

    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.before_value();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    pub fn finish(self) -> String {
        debug_assert!(self.need_comma.is_empty(), "unbalanced JSON writer");
        self.out
    }
}

/// Parsed JSON value, for validation and schema checks.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Convenience: `obj["key"]` lookup that flows through `Option`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Parse a complete JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    skip_ws(b, pos);
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar. The input came from &str, so
                // the byte stream is valid UTF-8.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_round_trips_through_parser() {
        let mut w = Writer::new();
        w.begin_object();
        w.key("name").string("he said \"hi\"\n");
        w.key("n").uint(42);
        w.key("neg").int(-7);
        w.key("pi").float(3.5);
        w.key("ok").bool(true);
        w.key("items").begin_array();
        w.uint(1);
        w.uint(2);
        w.begin_object();
        w.key("empty").begin_array();
        w.end_array();
        w.end_object();
        w.end_array();
        w.end_object();
        let text = w.finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("he said \"hi\"\n"));
        assert_eq!(v.get("n").unwrap().as_number(), Some(42.0));
        assert_eq!(v.get("neg").unwrap().as_number(), Some(-7.0));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("items").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["{", "[1,", "{\"a\":}", "nul", "\"abc", "{} x", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parser_accepts_escapes_and_unicode() {
        let v = parse(r#"{"s":"aA\t\\","arr":[null,false,-1.5e2]}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("aA\t\\"));
        assert_eq!(v.get("arr").unwrap().as_array().unwrap().len(), 3);
    }
}
