//! Hierarchical spans and Chrome `trace_event` export.
//!
//! Spans are RAII guards: creating one under an installed tracing collector
//! records a start time; dropping it appends a complete (`ph:"X"`) event.
//! With no collector installed — or a counters-only one — `span()` returns
//! an inert guard and the whole path is a thread-local read.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::json::Writer;
use crate::Collector;

/// Value of one span argument.
#[derive(Debug, Clone)]
pub(crate) enum ArgValue {
    Int(i64),
    Str(String),
}

/// A completed span, ready for export.
#[derive(Debug, Clone)]
pub(crate) struct SpanEvent {
    pub name: &'static str,
    pub ts_us: u64,
    pub dur_us: u64,
    pub tid: u64,
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Process-stable thread ids for trace rows: assigned densely in first-use
/// order, independent of the OS thread id.
fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// RAII span guard returned by [`crate::span`].
#[must_use = "a span measures until dropped; binding it to _ drops immediately"]
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    collector: Arc<Collector>,
    name: &'static str,
    start: Instant,
    args: Vec<(&'static str, ArgValue)>,
}

impl Span {
    pub(crate) fn disabled() -> Self {
        Span { inner: None }
    }

    pub(crate) fn active(collector: Arc<Collector>, name: &'static str) -> Self {
        Span {
            inner: Some(SpanInner {
                collector,
                name,
                start: Instant::now(),
                args: Vec::new(),
            }),
        }
    }

    /// Attach an integer argument (no-op when the span is inert).
    pub fn with_i(mut self, key: &'static str, value: i64) -> Self {
        if let Some(inner) = &mut self.inner {
            inner.args.push((key, ArgValue::Int(value)));
        }
        self
    }

    /// Attach a string argument (no allocation when the span is inert).
    pub fn with_s(mut self, key: &'static str, value: &str) -> Self {
        if let Some(inner) = &mut self.inner {
            inner.args.push((key, ArgValue::Str(value.to_string())));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_us = inner.start.elapsed().as_micros() as u64;
        let ts_us = inner
            .start
            .duration_since(inner.collector.epoch)
            .as_micros() as u64;
        let event = SpanEvent {
            name: inner.name,
            ts_us,
            dur_us,
            tid: current_tid(),
            args: inner.args,
        };
        inner.collector.spans.lock().unwrap().push(event);
    }
}

/// Category: the subsystem prefix of the span name (`heur.attempt` → `heur`).
fn category(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Render completed spans as a Chrome `trace_event` document
/// (`chrome://tracing` / Perfetto "JSON Object Format").
pub(crate) fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut w = Writer::new();
    w.begin_object();
    w.key("displayTimeUnit").string("ms");
    w.key("traceEvents").begin_array();
    for e in events {
        w.begin_object();
        w.key("name").string(e.name);
        w.key("cat").string(category(e.name));
        w.key("ph").string("X");
        w.key("ts").uint(e.ts_us);
        w.key("dur").uint(e.dur_us);
        w.key("pid").uint(1);
        w.key("tid").uint(e.tid);
        w.key("args").begin_object();
        for (k, v) in &e.args {
            w.key(k);
            match v {
                ArgValue::Int(i) => w.int(*i),
                ArgValue::Str(s) => w.string(s),
            };
        }
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Schema check for an exported trace: the shape `chrome://tracing` needs.
///
/// Returns the number of trace events, or a description of the first
/// violation. Used by the CI `profile` job.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = crate::json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    for (i, e) in events.iter().enumerate() {
        let obj = e.as_object().ok_or(format!("event {i} is not an object"))?;
        for key in ["name", "cat", "ph"] {
            if obj.get(key).and_then(|v| v.as_str()).is_none() {
                return Err(format!("event {i}: missing string field '{key}'"));
            }
        }
        if obj.get("ph").and_then(|v| v.as_str()) != Some("X") {
            return Err(format!("event {i}: ph is not \"X\""));
        }
        for key in ["ts", "dur", "pid", "tid"] {
            match obj.get(key).and_then(|v| v.as_number()) {
                Some(n) if n >= 0.0 => {}
                _ => {
                    return Err(format!(
                        "event {i}: missing non-negative number field '{key}'"
                    ))
                }
            }
        }
        if obj.get("args").map(|v| v.as_object().is_none()) == Some(true) {
            return Err(format!("event {i}: args is not an object"));
        }
    }
    Ok(events.len())
}
