//! Register-pressure compaction of a satisfying assignment — the SAT
//! backend's analogue of MOST's buffer-minimization objective (§3.3
//! adjustment 2).
//!
//! A CDCL model is an arbitrary feasible point: the greedy phase-true
//! descent tends to scatter operations across pipeline stages, and the
//! resulting def-use spans translate directly into FIFO buffers the
//! coloring allocator must realize as live ranges. MOST fixes this with a
//! second ILP solve minimizing `Σ b_v`; solving a second optimization
//! problem inside the SAT backend would double its budget, so we descend
//! locally instead: each op moves within its dependence slack toward the
//! direction that shrinks the summed spans of its register flow edges,
//! one op at a time, only to resource-feasible slots, until a fixpoint.
//! Every intermediate point is a valid schedule, so the pass is sound by
//! construction and deterministic by fixed iteration order.

use crate::encode::Instance;
use swp_ir::{Ddg, DepKind};

/// Maximum descent sweeps; in practice 2–3 reach the fixpoint.
const MAX_PASSES: usize = 8;

/// Shrink register-flow def-use spans of `times` in place.
pub(crate) fn compact(inst: &Instance, ddg: &Ddg, times: &mut [i64]) {
    let n = inst.n_ops;
    // d(cost)/d(t_i) = (register uses feeding i) − (register defs flowing
    // out of i): positive gradient wants the op earlier, negative later.
    let mut gradient = vec![0i64; n];
    for e in ddg.edges() {
        if e.from == e.to {
            continue;
        }
        if let DepKind::Data(_) = e.kind {
            gradient[e.to.index()] += 1;
            gradient[e.from.index()] -= 1;
        }
    }

    // Current modulo-resource usage of the assignment.
    let mut used: Vec<u32> = vec![0; inst.groups.len()];
    for (i, &t) in times.iter().enumerate() {
        for &(g, mult) in &inst.groups_of_var[inst.var_at(i, t) as usize] {
            used[g as usize] += mult;
        }
    }

    for _ in 0..MAX_PASSES {
        let mut moved = false;
        for i in 0..n {
            if gradient[i] == 0 {
                continue;
            }
            // Dependence slack around op i with every other op fixed.
            let (mut lo, mut hi) = inst.windows[i];
            for &(a, w) in &inst.pred[i] {
                if a as usize != i {
                    lo = lo.max(times[a as usize] + w);
                }
            }
            for &(b, w) in &inst.succ[i] {
                if b as usize != i {
                    hi = hi.min(times[b as usize] - w);
                }
            }
            let t = times[i];
            debug_assert!(lo <= t && t <= hi, "current time must be feasible");
            // Walk from the far end toward the current slot; the first
            // resource-feasible slot is the largest improvement.
            let candidates: Box<dyn Iterator<Item = i64>> = if gradient[i] > 0 {
                Box::new(lo..t)
            } else {
                Box::new((t + 1..=hi).rev())
            };
            for t2 in candidates {
                if try_move(inst, &mut used, i, t, t2) {
                    times[i] = t2;
                    moved = true;
                    break;
                }
            }
        }
        if !moved {
            break;
        }
    }
}

/// Move op `i` from `t` to `t2` if the target rows have capacity;
/// updates `used` and reports success.
fn try_move(inst: &Instance, used: &mut [u32], i: usize, t: i64, t2: i64) -> bool {
    let from = &inst.groups_of_var[inst.var_at(i, t) as usize];
    let to = &inst.groups_of_var[inst.var_at(i, t2) as usize];
    for &(g, mult) in from {
        used[g as usize] -= mult;
    }
    let fits = to
        .iter()
        .all(|&(g, mult)| used[g as usize] + mult <= inst.groups[g as usize].units);
    if fits {
        for &(g, mult) in to {
            used[g as usize] += mult;
        }
        true
    } else {
        for &(g, mult) in from {
            used[g as usize] += mult;
        }
        false
    }
}
