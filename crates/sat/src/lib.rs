//! swp-sat — the third "optimal" backend: a CDCL difference-logic
//! scheduler for the modulo-scheduling problem.
//!
//! Where MOST (`swp-most`) phrases each candidate II as an integer linear
//! program, this crate phrases it as propositional satisfiability over the
//! direct encoding `x[i][t]` and solves it with a small conflict-driven
//! clause-learning solver: watched-literal unit propagation, implicit
//! theory propagators for the at-most-one / dependence / modulo-resource
//! families, 1-UIP conflict analysis with clause learning, VSIDS
//! branching, and Luby restarts. The II ladder around the solver is
//! MOST's, verbatim: start at MinII, climb to MaxII, accept the first II
//! whose schedule also register-allocates, otherwise fall back to the
//! heuristic pipeliner (when enabled).
//!
//! Crucially the per-II search box is **MOST's horizon** — times in
//! `[0, II·(kmax+1))` with the same `kmax` stage bound — so a SAT/UNSAT
//! verdict here lines up with ILP feasible/infeasible there, and the two
//! backends achieve the same II on every loop both can solve within
//! budget. The differential suite holds them to that.
//!
//! All budgets that matter are deterministic work measures (conflicts,
//! propagations); wall clocks and cooperative cancellation exist for
//! latency control and always confess via `deadline_hit`, which the
//! schedule cache treats as "do not memoize".
//!
//! # Examples
//!
//! ```
//! use swp_sat::{pipeline_sat, SatOptions};
//! use swp_ir::LoopBuilder;
//! use swp_machine::Machine;
//!
//! let m = Machine::r8000();
//! let mut b = LoopBuilder::new("scale");
//! let a = b.invariant_f("a");
//! let x = b.array("x", 8);
//! let v = b.load(x, 0, 8);
//! let w = b.fmul(a, v);
//! b.store(x, 0, 8, w);
//! let lp = b.finish();
//! let r = pipeline_sat(&lp, &m, &SatOptions::default()).expect("schedules");
//! assert!(!r.stats.fell_back);
//! assert!(r.schedule.ii() >= 1);
//! ```

mod compact;
mod encode;
mod solver;

use solver::{SolveBudget, SolveOutcome, Solver};
use std::time::{Duration, Instant};
use swp_heur::HeurOptions;
use swp_ir::{Ddg, Loop, Schedule};
use swp_machine::Machine;
use swp_obs::CancelToken;
use swp_regalloc::{allocate, AllocOutcome, Allocation};

/// Controls for the SAT pipeliner.
#[derive(Debug, Clone)]
pub struct SatOptions {
    /// Conflict budget per II solve (deterministic; tests rely on this).
    pub conflict_limit: u64,
    /// Propagation budget per II solve. A satisfiable descent can
    /// propagate enormously without conflicting, so the conflict budget
    /// alone does not bound work.
    pub propagation_limit: u64,
    /// Wall-clock budget per II solve, mirroring MOST's 3-minute regime.
    pub time_limit: Option<Duration>,
    /// `MaxII = max_ii_factor × MinII`, as for the other pipeliners.
    pub max_ii_factor: u32,
    /// Fall back to the heuristic pipeliner when SAT fails (§4.4's
    /// arrangement, transplanted).
    pub fallback: bool,
    /// Overall wall-clock budget for the whole II ladder on one loop.
    pub loop_time_limit: Option<Duration>,
    /// Deterministic analogue of [`loop_time_limit`](Self::loop_time_limit):
    /// total conflicts across the whole II ladder. Once spent, no further
    /// II is attempted (the solve in flight still completes, so the
    /// overshoot is at most one `conflict_limit`).
    pub loop_conflict_limit: Option<u64>,
    /// Loops larger than this are not attempted at all — the direct
    /// encoding is `O(n · II · kmax)` variables and beyond MOST's
    /// practical ceiling the solves only burn their budgets.
    pub max_ops: usize,
    /// Cooperative cancellation, polled per conflict (the same granularity
    /// as `time_limit`). A cancelled search reports `deadline_hit` so the
    /// schedule cache never memoizes it. Not part of the cache key.
    pub cancel: CancelToken,
}

impl Default for SatOptions {
    fn default() -> SatOptions {
        SatOptions {
            conflict_limit: 200_000,
            propagation_limit: 100_000_000,
            time_limit: Some(Duration::from_secs(180)),
            max_ii_factor: 2,
            fallback: true,
            loop_time_limit: Some(Duration::from_secs(180)),
            loop_conflict_limit: None,
            max_ops: 80,
            cancel: CancelToken::never(),
        }
    }
}

impl SatOptions {
    /// The same budgets with the internal heuristic fallback disabled.
    /// The degradation ladder runs SAT this way: demotion to the heuristic
    /// is the ladder's job, and keeping the fallback inside SAT would blur
    /// which rung actually produced a schedule.
    pub fn without_fallback(&self) -> SatOptions {
        SatOptions {
            fallback: false,
            ..self.clone()
        }
    }
}

/// Statistics of a SAT run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SatStats {
    /// MinII of the loop.
    pub min_ii: u32,
    /// Branching decisions across all solves.
    pub decisions: u64,
    /// Conflicts across all solves (the coarse deterministic work
    /// measure, the analogue of MOST's branch-and-bound nodes).
    pub conflicts: u64,
    /// Unit propagations across all solves (the fine-grained deterministic
    /// work measure, the analogue of simplex pivots).
    pub propagations: u64,
    /// Luby restarts across all solves.
    pub restarts: u64,
    /// Literals in learned clauses across all solves.
    pub learned_literals: u64,
    /// SAT solves performed (one per II actually searched).
    pub solves: u32,
    /// Whether any wall-clock deadline (or cancellation) truncated the
    /// search. A result carrying this flag depends on host load and is
    /// *not* reproducible; the schedule cache refuses to memoize it.
    pub deadline_hit: bool,
    /// Whether every II below the achieved one was *proven* unsatisfiable
    /// and the winning solve ran to completion — a rate-optimality
    /// certificate. Trivially holds when the achieved II is MinII.
    pub optimal_ii: bool,
    /// Whether the heuristic fallback produced the result.
    pub fell_back: bool,
    /// IIs probed.
    pub iis_tried: Vec<u32>,
    /// Wall-clock time spent in SAT solving.
    pub solve_time: Duration,
    /// Nanoseconds spent in register allocation (including the fallback's
    /// allocation attempts, when it ran).
    pub alloc_ns: u64,
}

/// A loop pipelined by the SAT backend (or its heuristic fallback).
#[derive(Debug, Clone)]
pub struct SatPipelined {
    /// The scheduled body (identical to the input unless the fallback
    /// spilled).
    pub body: Loop,
    /// The accepted schedule.
    pub schedule: Schedule,
    /// A valid register allocation.
    pub allocation: Allocation,
    /// Run statistics.
    pub stats: SatStats,
}

impl SatPipelined {
    /// The achieved II.
    pub fn ii(&self) -> u32 {
        self.schedule.ii()
    }
}

/// Why the SAT backend (and its fallback, if enabled) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatError {
    /// The loop body is empty.
    EmptyLoop,
    /// No schedule found up to MaxII and the fallback was disabled or
    /// failed too.
    NoSchedule {
        /// MinII bound.
        min_ii: u32,
        /// MaxII bound.
        max_ii: u32,
        /// Whether a wall-clock deadline (or cancellation) truncated the
        /// search. When set, the failure is host-load-dependent (retrying
        /// may succeed); the schedule cache never memoizes it.
        deadline_hit: bool,
    },
}

impl std::fmt::Display for SatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SatError::EmptyLoop => write!(f, "cannot pipeline an empty loop"),
            SatError::NoSchedule {
                min_ii,
                max_ii,
                deadline_hit,
            } => {
                write!(f, "SAT found no schedule in II range [{min_ii}, {max_ii}]")?;
                if *deadline_hit {
                    write!(f, " (wall-clock deadline hit; result is host-dependent)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SatError {}

/// Pipeline a loop with the CDCL scheduler, MOST-style ladder.
///
/// # Errors
///
/// [`SatError::EmptyLoop`] on empty bodies, [`SatError::NoSchedule`] when
/// nothing (including the fallback) works.
pub fn pipeline_sat(
    lp: &Loop,
    machine: &Machine,
    opts: &SatOptions,
) -> Result<SatPipelined, SatError> {
    if lp.is_empty() {
        return Err(SatError::EmptyLoop);
    }
    if lp.len() > opts.max_ops {
        return fallback_or_fail(lp, machine, opts, 0, 0, false);
    }
    let ddg = Ddg::build(lp, machine);
    let min_ii = ddg.min_ii();
    let max_ii = (min_ii * opts.max_ii_factor.max(1)).max(min_ii + 1);
    let mut stats = SatStats {
        min_ii,
        ..SatStats::default()
    };

    let started = Instant::now();
    let loop_deadline = opts.loop_time_limit.map(|d| started + d);
    // Rate-optimality bookkeeping: stays true while every lower II that
    // was passed over carries a real UNSAT proof (not a budget timeout,
    // not a register-allocation failure).
    let mut proven_below = true;
    for ii in min_ii..=max_ii {
        if opts.cancel.is_cancelled() || loop_deadline.is_some_and(|d| Instant::now() >= d) {
            stats.deadline_hit = true;
            break;
        }
        if opts
            .loop_conflict_limit
            .is_some_and(|l| stats.conflicts >= l)
        {
            break;
        }
        stats.iis_tried.push(ii);
        swp_obs::count(swp_obs::Counter::SatIiSteps, 1);
        let step_span = swp_obs::span("sat.ii_step").with_i("ii", i64::from(ii));
        let solved = solve_at_ii(lp, &ddg, machine, ii, opts, loop_deadline, &mut stats);
        drop(step_span);
        match solved {
            IiOutcome::Schedule(schedule, complete) => {
                debug_assert_eq!(schedule.validate(lp, &ddg, machine), Ok(()));
                let (outcome, alloc_ns) =
                    swp_obs::timed_ns("regalloc.attempt", || allocate(lp, &schedule, machine));
                stats.alloc_ns = stats.alloc_ns.saturating_add(alloc_ns);
                match outcome {
                    AllocOutcome::Allocated(allocation) => {
                        stats.optimal_ii = proven_below && complete;
                        stats.solve_time = started.elapsed();
                        return Ok(SatPipelined {
                            body: lp.clone(),
                            schedule,
                            allocation,
                            stats,
                        });
                    }
                    AllocOutcome::Failed { .. } => {
                        // SAT has no spilling; a larger II gives the
                        // allocator more slack. The passed-over II *was*
                        // schedulable, so optimality is forfeited.
                        proven_below = false;
                        continue;
                    }
                }
            }
            IiOutcome::ProvenUnsat => continue,
            IiOutcome::Unknown => {
                proven_below = false;
                continue;
            }
        }
    }
    stats.solve_time = started.elapsed();
    let mut r = fallback_or_fail(lp, machine, opts, min_ii, max_ii, stats.deadline_hit);
    if let Ok(p) = &mut r {
        p.stats.min_ii = stats.min_ii;
        p.stats.decisions = stats.decisions;
        p.stats.conflicts = stats.conflicts;
        p.stats.propagations = stats.propagations;
        p.stats.restarts = stats.restarts;
        p.stats.learned_literals = stats.learned_literals;
        p.stats.solves = stats.solves;
        p.stats.deadline_hit = stats.deadline_hit;
        p.stats.iis_tried = stats.iis_tried;
        p.stats.solve_time = stats.solve_time;
        p.stats.alloc_ns = p.stats.alloc_ns.saturating_add(stats.alloc_ns);
    }
    r
}

/// What one II attempt concluded.
enum IiOutcome {
    /// A model, and whether the solve ran without budget truncation
    /// (`true` ⇒ an UNSAT verdict at this II would also have been found).
    Schedule(Schedule, bool),
    /// Proven unsatisfiable at this II (within the shared horizon).
    ProvenUnsat,
    /// Budget ran out first.
    Unknown,
}

/// Encode and solve one II, folding solver work into `stats` and the
/// telemetry counters.
fn solve_at_ii(
    lp: &Loop,
    ddg: &Ddg,
    machine: &Machine,
    ii: u32,
    opts: &SatOptions,
    loop_deadline: Option<Instant>,
    stats: &mut SatStats,
) -> IiOutcome {
    let Some(inst) = encode::build(lp, ddg, machine, ii) else {
        // Positive dependence cycle or an empty longest-path window: a
        // structural UNSAT proof, no search needed.
        return IiOutcome::ProvenUnsat;
    };
    let solve_deadline = opts.time_limit.map(|d| Instant::now() + d);
    let deadline = match (solve_deadline, loop_deadline) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    let budget = SolveBudget {
        conflict_limit: opts.conflict_limit,
        propagation_limit: opts.propagation_limit,
        deadline,
    };
    let mut solver = Solver::new(&inst);
    stats.solves += 1;
    let outcome = solver.solve(&budget, &opts.cancel);
    stats.decisions += solver.stats.decisions;
    stats.conflicts += solver.stats.conflicts;
    stats.propagations += solver.stats.propagations;
    stats.restarts += solver.stats.restarts;
    stats.learned_literals += solver.stats.learned_literals;
    swp_obs::count(swp_obs::Counter::SatDecisions, solver.stats.decisions);
    swp_obs::count(swp_obs::Counter::SatConflicts, solver.stats.conflicts);
    swp_obs::count(swp_obs::Counter::SatPropagations, solver.stats.propagations);
    swp_obs::count(swp_obs::Counter::SatRestarts, solver.stats.restarts);
    swp_obs::count(
        swp_obs::Counter::SatLearnedLiterals,
        solver.stats.learned_literals,
    );
    match outcome {
        SolveOutcome::Sat(mut times) => {
            // The model is an arbitrary feasible point; shrink its def-use
            // spans so the coloring allocator sees MOST-like pressure
            // (see `compact`). Without this, loops MOST only schedules
            // thanks to buffer minimization fail allocation here and the
            // two backends diverge on achieved II.
            compact::compact(&inst, ddg, &mut times);
            IiOutcome::Schedule(Schedule::new(ii, times), true)
        }
        SolveOutcome::Unsat => IiOutcome::ProvenUnsat,
        SolveOutcome::Unknown { deadline_hit } => {
            stats.deadline_hit |= deadline_hit;
            IiOutcome::Unknown
        }
    }
}

/// The same arrangement as MOST's §4.4 fallback: when the optimal method
/// cannot schedule in time, hand the loop to the heuristic pipeliner.
fn fallback_or_fail(
    lp: &Loop,
    machine: &Machine,
    opts: &SatOptions,
    min_ii: u32,
    max_ii: u32,
    deadline_hit: bool,
) -> Result<SatPipelined, SatError> {
    if opts.fallback {
        let heur_opts = HeurOptions {
            cancel: opts.cancel.clone(),
            ..HeurOptions::default()
        };
        if let Ok(h) = swp_heur::pipeline(lp, machine, &heur_opts) {
            swp_obs::count(swp_obs::Counter::SatFallbacks, 1);
            let stats = SatStats {
                fell_back: true,
                deadline_hit,
                alloc_ns: h.stats.alloc_ns,
                ..SatStats::default()
            };
            return Ok(SatPipelined {
                body: h.body,
                schedule: h.schedule,
                allocation: h.allocation,
                stats,
            });
        }
    }
    Err(SatError::NoSchedule {
        min_ii,
        max_ii,
        deadline_hit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ir::LoopBuilder;

    fn saxpy() -> Loop {
        let mut b = LoopBuilder::new("saxpy");
        let a = b.invariant_f("a");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let xv = b.load(x, 0, 8);
        let yv = b.load(y, 0, 8);
        let r = b.fmadd(a, xv, yv);
        b.store(y, 0, 8, r);
        b.finish()
    }

    fn dot() -> Loop {
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let xv = b.load(x, 0, 8);
        let yv = b.load(y, 0, 8);
        let s = b.carried_f("s");
        let s1 = b.fmadd(xv, yv, s.value());
        b.close(s, s1, 1);
        b.finish()
    }

    #[test]
    fn sat_matches_min_ii_on_saxpy() {
        let m = Machine::r8000();
        let r = pipeline_sat(&saxpy(), &m, &SatOptions::default()).expect("schedules");
        assert_eq!(r.ii(), 2);
        assert!(r.stats.optimal_ii);
        assert!(!r.stats.fell_back);
    }

    #[test]
    fn sat_agrees_with_most_ii() {
        let m = Machine::r8000();
        for lp in [saxpy(), dot()] {
            let sat = pipeline_sat(&lp, &m, &SatOptions::default()).expect("sat");
            let most =
                swp_most::pipeline_most(&lp, &m, &swp_most::MostOptions::default()).expect("most");
            assert_eq!(sat.ii(), most.ii(), "loop {}", lp.name());
            assert!(!sat.stats.fell_back);
        }
    }

    #[test]
    fn below_min_ii_is_proven_unsat() {
        // The recurrence in `dot` forces RecMII; the solver must prove
        // UNSAT (not time out) strictly below MinII.
        let m = Machine::r8000();
        let lp = dot();
        let ddg = Ddg::build(&lp, &m);
        let min_ii = ddg.min_ii();
        assert!(min_ii > 1);
        let mut stats = SatStats::default();
        let opts = SatOptions {
            time_limit: None,
            loop_time_limit: None,
            ..SatOptions::default()
        };
        let out = solve_at_ii(&lp, &ddg, &m, min_ii - 1, &opts, None, &mut stats);
        assert!(matches!(out, IiOutcome::ProvenUnsat));
    }

    #[test]
    fn conflict_budget_truncates_deterministically() {
        // A conflict budget is a pure work measure: two runs of the same
        // input must do identical work and never set the wall-clock flag.
        let m = Machine::r8000();
        let opts = SatOptions {
            conflict_limit: 3,
            propagation_limit: 500,
            time_limit: None,
            loop_time_limit: None,
            fallback: false,
            ..SatOptions::default()
        };
        let a = pipeline_sat(&dot(), &m, &opts);
        let b = pipeline_sat(&dot(), &m, &opts);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.stats.propagations, y.stats.propagations);
                assert_eq!(x.stats.conflicts, y.stats.conflicts);
                assert_eq!(x.schedule.times(), y.schedule.times());
                assert!(!x.stats.deadline_hit);
                assert!(!y.stats.deadline_hit);
            }
            (Err(x), Err(y)) => {
                assert_eq!(x, y);
                assert!(matches!(
                    x,
                    SatError::NoSchedule {
                        deadline_hit: false,
                        ..
                    }
                ));
            }
            (a, b) => panic!("runs disagreed: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn cancelled_search_reports_deadline() {
        let m = Machine::r8000();
        let token = CancelToken::new();
        token.cancel();
        let opts = SatOptions {
            fallback: false,
            cancel: token,
            ..SatOptions::default()
        };
        match pipeline_sat(&saxpy(), &m, &opts) {
            Err(SatError::NoSchedule { deadline_hit, .. }) => assert!(deadline_hit),
            other => panic!("pre-cancelled search must fail transiently, got {other:?}"),
        }
    }

    #[test]
    fn fallback_engages_when_budget_exhausted() {
        let m = Machine::r8000();
        let opts = SatOptions {
            conflict_limit: 0,
            propagation_limit: 0,
            time_limit: None,
            ..SatOptions::default()
        };
        let r = pipeline_sat(&saxpy(), &m, &opts).expect("fallback rescues");
        assert!(r.stats.fell_back);
        let ddg = Ddg::build(&r.body, &m);
        assert_eq!(r.schedule.validate(&r.body, &ddg, &m), Ok(()));
    }

    #[test]
    fn empty_loop_is_error() {
        let m = Machine::r8000();
        let lp = LoopBuilder::new("e").finish();
        assert!(matches!(
            pipeline_sat(&lp, &m, &SatOptions::default()),
            Err(SatError::EmptyLoop)
        ));
    }
}
