//! Per-II propositional encoding of the modulo-scheduling problem.
//!
//! The encoding is the direct one: a boolean `x[i][t]` per operation `i`
//! and candidate issue time `t`, over exactly MOST's search box — times in
//! `[0, II·(kmax+1))` with `kmax = ⌊Σ latency / II⌋ + 2`, the ILP's stage
//! bound. Using the *same* horizon matters: it makes a per-II SAT/UNSAT
//! verdict here coincide with ILP feasible/infeasible there, which is what
//! the differential tests (same achieved II on mutually solved loops)
//! lean on.
//!
//! Only the at-least-one rows become explicit clauses. Everything else —
//! at-most-one per op, dependence difference bounds
//! `t(to) − t(from) ≥ latency − II·distance`, and modulo resource
//! capacities with multi-cycle reservation multiplicities — stays implicit
//! and is enforced by the solver's theory propagators, which produce
//! clause-shaped explanations on demand for conflict analysis. A direct
//! clausal expansion of the resource rows alone would be quadratic per
//! row; the counting propagator is linear and explains lazily.
//!
//! Per-op time windows are pre-tightened with the all-pairs longest-path
//! table: any schedule places every op at a nonnegative time no later than
//! `H − 1`, so `est_i = max(0, max_a LP(a→i))` and
//! `let_i = (H−1) − max(0, max_b LP(i→b))` are sound. An empty window is a
//! proof of infeasibility at this II (within the shared horizon).

use swp_ir::{Ddg, LongestPaths, Loop};
use swp_machine::{Machine, ResourceClass};

/// One modulo resource row: `Σ mult(member) ≤ units` over the true members.
pub(crate) struct Group {
    /// Capacity of the unit class.
    pub units: u32,
    /// `(var, multiplicity)` — how many slots of this row the variable's
    /// reservation occupies when true (> 1 when a reservation's duration
    /// wraps the kernel more than once).
    pub members: Vec<(u32, u32)>,
}

/// A ground instance at a fixed II.
pub(crate) struct Instance {
    /// Operations in the loop.
    pub n_ops: usize,
    /// Total boolean variables.
    pub n_vars: usize,
    /// Owning op per variable.
    pub op_of: Vec<u32>,
    /// Issue time per variable.
    pub time_of: Vec<i64>,
    /// Inclusive `[est, let]` window per op.
    pub windows: Vec<(i64, i64)>,
    /// First variable id per op (its window is contiguous).
    pub var_base: Vec<u32>,
    /// Outgoing dependence arcs per op as `(succ, weight)`, parallel arcs
    /// deduplicated to the max weight.
    pub succ: Vec<Vec<(u32, i64)>>,
    /// Incoming dependence arcs per op as `(pred, weight)`.
    pub pred: Vec<Vec<(u32, i64)>>,
    /// Modulo resource rows.
    pub groups: Vec<Group>,
    /// For each variable, the groups it occupies with multiplicities.
    pub groups_of_var: Vec<Vec<(u32, u32)>>,
}

impl Instance {
    /// All variables of one op, in increasing time order.
    pub(crate) fn vars_of_op(&self, op: usize) -> std::ops::Range<u32> {
        let base = self.var_base[op];
        let (lo, hi) = self.windows[op];
        base..base + (hi - lo + 1) as u32
    }

    /// The variable for op `op` at time `t` (must lie in its window).
    pub(crate) fn var_at(&self, op: usize, t: i64) -> u32 {
        debug_assert!(t >= self.windows[op].0 && t <= self.windows[op].1);
        self.var_base[op] + (t - self.windows[op].0) as u32
    }
}

/// Build the instance at `ii`, or `None` when the II is proven infeasible
/// before any search (positive dependence cycle, or an op whose
/// longest-path window is empty).
pub(crate) fn build(lp: &Loop, ddg: &Ddg, machine: &Machine, ii: u32) -> Option<Instance> {
    let n = lp.len();
    let iiw = i64::from(ii);

    // MOST's horizon: stages 0..=kmax, rows 0..ii ⇒ times 0..h.
    let total_latency: i64 = lp
        .ops()
        .iter()
        .map(|o| i64::from(machine.latency(o.class)))
        .sum();
    let kmax = total_latency / iiw + 2;
    let h = iiw * (kmax + 1);

    // Positive cycle ⇒ II < RecMII ⇒ infeasible, proven.
    let paths = LongestPaths::compute(ddg, ii)?;

    let ops = lp.ops();
    let mut windows = Vec::with_capacity(n);
    for i in 0..n {
        let to_me = (0..n)
            .filter_map(|a| paths.get(ops[a].id, ops[i].id))
            .max()
            .unwrap_or(0)
            .max(0);
        let from_me = (0..n)
            .filter_map(|b| paths.get(ops[i].id, ops[b].id))
            .max()
            .unwrap_or(0)
            .max(0);
        let est = to_me;
        let lat = (h - 1) - from_me;
        if est > lat {
            return None; // empty window: infeasible at this II
        }
        windows.push((est, lat));
    }

    let mut var_base = Vec::with_capacity(n);
    let mut op_of = Vec::new();
    let mut time_of = Vec::new();
    for (i, &(lo, hi)) in windows.iter().enumerate() {
        var_base.push(op_of.len() as u32);
        for t in lo..=hi {
            op_of.push(i as u32);
            time_of.push(t);
        }
    }
    let n_vars = op_of.len();

    // Dependence adjacency, parallel arcs collapsed to the max weight.
    let mut succ: Vec<Vec<(u32, i64)>> = vec![Vec::new(); n];
    let mut pred: Vec<Vec<(u32, i64)>> = vec![Vec::new(); n];
    for e in ddg.edges() {
        let (a, b) = (e.from.index(), e.to.index());
        let w = e.latency - iiw * i64::from(e.distance);
        upsert_max(&mut succ[a], b as u32, w);
        upsert_max(&mut pred[b], a as u32, w);
    }

    // Modulo resource rows, one group per (class, kernel row) that any
    // reservation touches. Multiplicity counts how many cycles of the
    // reservation land on the row (duration may wrap the kernel).
    let mut groups: Vec<Group> = Vec::new();
    let mut groups_of_var: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_vars];
    for class in ResourceClass::ALL {
        let units = machine.units(class);
        let mut rows: Vec<Vec<(u32, u32)>> = vec![Vec::new(); ii as usize];
        for (i, op) in ops.iter().enumerate() {
            for res in machine.reservations(op.class) {
                if res.class != class {
                    continue;
                }
                for v in instance_vars(&var_base, &windows, i) {
                    let t = time_of[v as usize];
                    // Cycles t..t+duration land on rows (t+d) mod II.
                    let full_wraps = res.duration / ii;
                    let rem = res.duration % ii;
                    let start = (t % iiw) as u32;
                    for r in 0..ii {
                        let covered = rem > 0 && {
                            // Rows start, start+1, … start+rem−1 (mod II).
                            let off = (r + ii - start) % ii;
                            off < rem
                        };
                        let mult = full_wraps + u32::from(covered);
                        if mult > 0 {
                            rows[r as usize].push((v, mult));
                        }
                    }
                }
            }
        }
        for members in rows {
            if members.is_empty() {
                continue;
            }
            let g = groups.len() as u32;
            for &(v, mult) in &members {
                groups_of_var[v as usize].push((g, mult));
            }
            groups.push(Group { units, members });
        }
    }

    Some(Instance {
        n_ops: n,
        n_vars,
        op_of,
        time_of,
        windows,
        var_base,
        succ,
        pred,
        groups,
        groups_of_var,
    })
}

fn upsert_max(adj: &mut Vec<(u32, i64)>, node: u32, w: i64) {
    match adj.iter_mut().find(|(x, _)| *x == node) {
        Some((_, old)) => *old = (*old).max(w),
        None => adj.push((node, w)),
    }
}

fn instance_vars(var_base: &[u32], windows: &[(i64, i64)], op: usize) -> std::ops::Range<u32> {
    let base = var_base[op];
    let (lo, hi) = windows[op];
    base..base + (hi - lo + 1) as u32
}
