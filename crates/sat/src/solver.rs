//! The CDCL core: watched-literal unit propagation over the explicit
//! clause database (at-least-one rows + learned clauses), theory-style
//! propagators for the implicit constraint families (at-most-one per op,
//! dependence difference bounds, modulo resource capacities), 1-UIP
//! conflict analysis with clause learning, VSIDS branching, and Luby
//! restarts.
//!
//! Everything the solver does is a deterministic function of the instance
//! and the work budgets: tie-breaks are by variable index, activities are
//! IEEE doubles updated in a fixed order, and restarts follow the Luby
//! sequence on conflict counts. Two runs of the same instance truncate at
//! identical points — the property every differential and determinism
//! test in this repository leans on. Only the optional wall-clock deadline
//! and the cooperative cancel token break reproducibility, and both report
//! themselves via [`SolveOutcome::Unknown`] `deadline_hit` so callers can
//! refuse to memoize.

use crate::encode::Instance;
use std::time::Instant;
use swp_obs::CancelToken;

/// A literal: variable index shifted left, low bit = negated.
pub(crate) type Lit = u32;

#[inline]
fn lit(var: u32, neg: bool) -> Lit {
    (var << 1) | u32::from(neg)
}

#[inline]
fn var_of(l: Lit) -> u32 {
    l >> 1
}

#[inline]
fn is_neg(l: Lit) -> bool {
    l & 1 != 0
}

#[inline]
fn negate(l: Lit) -> Lit {
    l ^ 1
}

/// Why a variable holds its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    /// A branching decision (or unassigned).
    Decision,
    /// Propagated by the clause at this index (unit under the assignment).
    Clause(u32),
    /// Implied by a single true literal: the stored literal is the *false*
    /// antecedent (`¬y` for true `y`), i.e. the reason clause is
    /// `(this ∨ stored)`. Covers at-most-one and dependence propagations,
    /// whose reason clauses are always binary.
    Binary(Lit),
    /// Forbidden because the resource group at this index is saturated;
    /// the explanation is reconstructed from the group's true members
    /// assigned earlier on the trail.
    Resource(u32),
}

/// Outcome of one solve at a fixed II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SolveOutcome {
    /// Satisfiable: issue time per op.
    Sat(Vec<i64>),
    /// Proven unsatisfiable (conflict at decision level 0).
    Unsat,
    /// Budget ran out before a verdict. `deadline_hit` marks the
    /// host-dependent truncations (wall clock or cancellation) as opposed
    /// to the deterministic conflict/propagation budgets.
    Unknown {
        /// Wall-clock deadline or cancel token fired.
        deadline_hit: bool,
    },
}

/// Deterministic work counters of one solve.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SolveStats {
    pub decisions: u64,
    pub conflicts: u64,
    pub propagations: u64,
    pub restarts: u64,
    pub learned_literals: u64,
}

/// Work budgets for one solve.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SolveBudget {
    pub conflict_limit: u64,
    pub propagation_limit: u64,
    pub deadline: Option<Instant>,
}

const LUBY_UNIT: u64 = 64;
const VAR_DECAY: f64 = 0.95;
const RESCALE_LIMIT: f64 = 1e100;

/// The i-th term (1-based) of the Luby restart sequence.
fn luby(mut i: u64) -> u64 {
    // Find the largest k with 2^k - 1 <= i; recurse on the remainder.
    loop {
        let mut k = 1u64;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

struct Clause {
    lits: Vec<Lit>,
}

/// Max-activity variable order: a binary heap with position tracking so
/// activity bumps can sift in place. Ties break toward the smaller
/// variable index, keeping branching fully deterministic.
struct VarOrder {
    heap: Vec<u32>,
    pos: Vec<i32>,
}

impl VarOrder {
    fn new(n: usize) -> VarOrder {
        VarOrder {
            heap: (0..n as u32).collect(),
            pos: (0..n as i32).collect(),
        }
    }

    #[inline]
    fn before(act: &[f64], a: u32, b: u32) -> bool {
        act[a as usize] > act[b as usize] || (act[a as usize] == act[b as usize] && a < b)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let p = (i - 1) / 2;
            if Self::before(act, self.heap[i], self.heap[p]) {
                self.heap.swap(i, p);
                self.pos[self.heap[i] as usize] = i as i32;
                self.pos[self.heap[p] as usize] = p as i32;
                i = p;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            if l >= self.heap.len() {
                break;
            }
            let r = l + 1;
            let c = if r < self.heap.len() && Self::before(act, self.heap[r], self.heap[l]) {
                r
            } else {
                l
            };
            if Self::before(act, self.heap[c], self.heap[i]) {
                self.heap.swap(i, c);
                self.pos[self.heap[i] as usize] = i as i32;
                self.pos[self.heap[c] as usize] = c as i32;
                i = c;
            } else {
                break;
            }
        }
    }

    fn insert(&mut self, v: u32, act: &[f64]) {
        if self.pos[v as usize] >= 0 {
            return;
        }
        self.pos[v as usize] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop(&mut self, act: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        self.pos[top as usize] = -1;
        let last = self.heap.pop().expect("nonempty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn bumped(&mut self, v: u32, act: &[f64]) {
        let p = self.pos[v as usize];
        if p >= 0 {
            self.sift_up(p as usize, act);
        }
    }
}

pub(crate) struct Solver<'a> {
    inst: &'a Instance,
    /// Per-variable assignment: 0 unassigned, 1 true, -1 false.
    value: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<Reason>,
    /// Trail position per variable (valid while assigned).
    tpos: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    clauses: Vec<Clause>,
    /// `watches[l]`: clause indices watching literal `l` (visited when `l`
    /// becomes false).
    watches: Vec<Vec<u32>>,
    /// Occupied capacity per resource group (sum of member multiplicities
    /// currently true).
    group_count: Vec<u32>,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarOrder,
    phase: Vec<bool>,
    seen: Vec<bool>,
    root_conflict: bool,
    pub stats: SolveStats,
}

impl<'a> Solver<'a> {
    pub(crate) fn new(inst: &'a Instance) -> Solver<'a> {
        let n = inst.n_vars;
        let mut s = Solver {
            inst,
            value: vec![0; n],
            level: vec![0; n],
            reason: vec![Reason::Decision; n],
            tpos: vec![0; n],
            trail: Vec::with_capacity(n),
            trail_lim: Vec::new(),
            qhead: 0,
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2 * n],
            group_count: vec![0; inst.groups.len()],
            activity: vec![0.0; n],
            var_inc: 1.0,
            order: VarOrder::new(n),
            phase: vec![true; n],
            seen: vec![false; n],
            root_conflict: false,
            stats: SolveStats::default(),
        };
        // At-least-one row per op: the only eagerly materialized clauses.
        for op in 0..inst.n_ops {
            let lits: Vec<Lit> = inst.vars_of_op(op).map(|v| lit(v, false)).collect();
            s.add_clause(lits);
        }
        s
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> i8 {
        let v = self.value[var_of(l) as usize];
        if is_neg(l) {
            -v
        } else {
            v
        }
    }

    #[inline]
    fn current_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Install a clause. Unit clauses enqueue at the root; empty clauses
    /// and root-level contradictions mark the instance unsatisfiable.
    fn add_clause(&mut self, lits: Vec<Lit>) {
        match lits.len() {
            0 => self.root_conflict = true,
            1 => {
                if !self.enqueue(lits[0], Reason::Decision) {
                    self.root_conflict = true;
                }
            }
            _ => {
                let ci = self.clauses.len() as u32;
                self.watches[lits[0] as usize].push(ci);
                self.watches[lits[1] as usize].push(ci);
                self.clauses.push(Clause { lits });
            }
        }
    }

    /// Assert a literal. Returns `false` on contradiction with the current
    /// assignment (the caller builds the conflict explanation).
    fn enqueue(&mut self, l: Lit, why: Reason) -> bool {
        match self.lit_value(l) {
            1 => true,
            -1 => false,
            _ => {
                let v = var_of(l) as usize;
                self.value[v] = if is_neg(l) { -1 } else { 1 };
                self.level[v] = self.current_level();
                self.reason[v] = why;
                self.tpos[v] = self.trail.len() as u32;
                self.trail.push(l);
                if !is_neg(l) {
                    for &(g, mult) in &self.inst.groups_of_var[v] {
                        self.group_count[g as usize] += mult;
                    }
                }
                true
            }
        }
    }

    /// Unit propagation to fixpoint: clause watches plus the implicit
    /// propagators. Returns the conflict clause (all-false literals) if one
    /// arises.
    fn propagate(&mut self) -> Option<Vec<Lit>> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            if let Some(c) = self.propagate_clauses(p) {
                return Some(c);
            }
            if !is_neg(p) {
                if let Some(c) = self.propagate_theory(p) {
                    return Some(c);
                }
            }
        }
        None
    }

    /// Visit the watch list of `¬p` (now false) in the classic two-watch
    /// scheme.
    fn propagate_clauses(&mut self, p: Lit) -> Option<Vec<Lit>> {
        let false_lit = negate(p);
        let mut ws = std::mem::take(&mut self.watches[false_lit as usize]);
        let mut i = 0;
        'next: while i < ws.len() {
            let ci = ws[i] as usize;
            // Normalize: the false literal sits at position 1.
            if self.clauses[ci].lits[0] == false_lit {
                self.clauses[ci].lits.swap(0, 1);
            }
            // Satisfied clause: keep the watch.
            let first = self.clauses[ci].lits[0];
            if self.lit_value(first) == 1 {
                i += 1;
                continue;
            }
            // Hunt a replacement watch.
            let len = self.clauses[ci].lits.len();
            for k in 2..len {
                let lk = self.clauses[ci].lits[k];
                if self.lit_value(lk) != -1 {
                    self.clauses[ci].lits.swap(1, k);
                    self.watches[lk as usize].push(ci as u32);
                    ws.swap_remove(i);
                    continue 'next;
                }
            }
            // Unit or conflicting.
            if self.lit_value(first) == -1 {
                let conflict = self.clauses[ci].lits.clone();
                self.watches[false_lit as usize] = ws;
                return Some(conflict);
            }
            let ok = self.enqueue(first, Reason::Clause(ci as u32));
            debug_assert!(ok, "unassigned literal always enqueues");
            i += 1;
        }
        self.watches[false_lit as usize] = ws;
        None
    }

    /// Theory propagation for a newly-true op-time literal: at-most-one
    /// across the op's window, difference bounds along dependence arcs,
    /// and modulo resource capacities.
    fn propagate_theory(&mut self, p: Lit) -> Option<Vec<Lit>> {
        let v = var_of(p);
        let op = self.inst.op_of[v as usize] as usize;
        let t = self.inst.time_of[v as usize];
        let antecedent = negate(p); // the false "¬x" literal for reasons

        // At-most-one: every other time of this op is out.
        for q in self.inst.vars_of_op(op) {
            if q != v && !self.forbid(q, antecedent) {
                return Some(vec![lit(q, true), antecedent]);
            }
        }
        // Dependences: t(succ) ≥ t + w  and  t(pred) ≤ t − w.
        for &(b, w) in &self.inst.succ[op] {
            let (lo, hi) = self.inst.windows[b as usize];
            let cut = (t + w).min(hi + 1);
            for tb in lo..cut {
                let q = self.inst.var_at(b as usize, tb);
                if !self.forbid(q, antecedent) {
                    return Some(vec![lit(q, true), antecedent]);
                }
            }
        }
        for &(a, w) in &self.inst.pred[op] {
            let (lo, hi) = self.inst.windows[a as usize];
            let cut = (t - w + 1).max(lo);
            for ta in cut..=hi {
                let q = self.inst.var_at(a as usize, ta);
                if !self.forbid(q, antecedent) {
                    return Some(vec![lit(q, true), antecedent]);
                }
            }
        }
        // Resource groups this literal occupies (counts were bumped at
        // enqueue time): forbid members that no longer fit.
        for &(g, _mult) in &self.inst.groups_of_var[v as usize] {
            let group = &self.inst.groups[g as usize];
            let used = self.group_count[g as usize];
            if used > group.units {
                return Some(self.resource_conflict(g));
            }
            let free = group.units - used;
            for mi in 0..group.members.len() {
                let (m, mmult) = self.inst.groups[g as usize].members[mi];
                if mmult > free && self.value[m as usize] == 0 && !self.forbid_resource(m, g) {
                    unreachable!("unassigned literal always enqueues");
                }
            }
        }
        None
    }

    /// Set variable `q` false with a binary reason. Returns `false` when
    /// `q` is already true (conflict).
    #[inline]
    fn forbid(&mut self, q: u32, antecedent: Lit) -> bool {
        self.enqueue(lit(q, true), Reason::Binary(antecedent))
    }

    #[inline]
    fn forbid_resource(&mut self, q: u32, g: u32) -> bool {
        self.enqueue(lit(q, true), Reason::Resource(g))
    }

    /// Conflict explanation for an over-subscribed group: every true
    /// member, negated.
    fn resource_conflict(&self, g: u32) -> Vec<Lit> {
        self.inst.groups[g as usize]
            .members
            .iter()
            .filter(|&&(m, _)| self.value[m as usize] == 1)
            .map(|&(m, _)| lit(m, true))
            .collect()
    }

    /// Reason clause of an assigned literal, minus the literal itself:
    /// the false antecedents that forced it.
    fn reason_lits(&self, l: Lit) -> Vec<Lit> {
        let v = var_of(l) as usize;
        match self.reason[v] {
            Reason::Decision => Vec::new(),
            Reason::Binary(a) => vec![a],
            Reason::Clause(ci) => self.clauses[ci as usize]
                .lits
                .iter()
                .copied()
                .filter(|&q| var_of(q) != v as u32)
                .collect(),
            Reason::Resource(g) => {
                // True members assigned before this propagation whose
                // multiplicities saturated the group.
                let group = &self.inst.groups[g as usize];
                let my_pos = self.tpos[v];
                let (_, my_mult) = group
                    .members
                    .iter()
                    .find(|&&(m, _)| m == v as u32)
                    .expect("member of its own group");
                let needed = group.units.saturating_sub(*my_mult) + 1;
                let mut antecedents: Vec<(u32, Lit, u32)> = group
                    .members
                    .iter()
                    .filter(|&&(m, _)| {
                        self.value[m as usize] == 1 && self.tpos[m as usize] < my_pos
                    })
                    .map(|&(m, mult)| (self.tpos[m as usize], lit(m, true), mult))
                    .collect();
                antecedents.sort_unstable_by_key(|&(p, _, _)| p);
                let mut out = Vec::new();
                let mut total = 0u32;
                for (_, l, mult) in antecedents {
                    out.push(l);
                    total += mult;
                    if total >= needed {
                        break;
                    }
                }
                debug_assert!(total >= needed, "explanation must saturate the group");
                out
            }
        }
    }

    #[inline]
    fn bump(&mut self, v: u32) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1.0 / RESCALE_LIMIT;
            }
            self.var_inc *= 1.0 / RESCALE_LIMIT;
        }
        self.order.bumped(v, &self.activity);
    }

    /// 1-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: Vec<Lit>) -> (Vec<Lit>, u32) {
        let current = self.current_level();
        let mut learned: Vec<Lit> = vec![0];
        let mut counter = 0u32;
        let mut idx = self.trail.len();
        let mut reason = conflict;
        let mut cleared: Vec<u32> = Vec::new();
        loop {
            for &q in &reason {
                let v = var_of(q);
                if !self.seen[v as usize] && self.level[v as usize] > 0 {
                    self.seen[v as usize] = true;
                    cleared.push(v);
                    self.bump(v);
                    if self.level[v as usize] == current {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Walk the trail back to the next marked literal.
            let p = loop {
                idx -= 1;
                let l = self.trail[idx];
                if self.seen[var_of(l) as usize] {
                    break l;
                }
            };
            self.seen[var_of(p) as usize] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = negate(p);
                break;
            }
            reason = self.reason_lits(p);
        }
        for v in cleared {
            self.seen[v as usize] = false;
        }
        // Backjump to the deepest level among the other literals, with
        // that literal in watch position 1.
        let mut bj = 0u32;
        let mut at = 1usize;
        for (i, &q) in learned.iter().enumerate().skip(1) {
            let lv = self.level[var_of(q) as usize];
            if lv > bj {
                bj = lv;
                at = i;
            }
        }
        if learned.len() > 1 {
            learned.swap(1, at);
        }
        (learned, bj)
    }

    /// Undo the trail down to `level`.
    fn backtrack(&mut self, level: u32) {
        while self.current_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail nonempty");
                let v = var_of(l);
                if !is_neg(l) {
                    for &(g, mult) in &self.inst.groups_of_var[v as usize] {
                        self.group_count[g as usize] -= mult;
                    }
                }
                self.phase[v as usize] = !is_neg(l);
                self.value[v as usize] = 0;
                self.reason[v as usize] = Reason::Decision;
                self.order.insert(v, &self.activity);
            }
        }
        self.qhead = self.trail.len();
    }

    /// Pick the next branching literal: the most active unassigned
    /// variable in its saved phase.
    fn decide(&mut self) -> Option<Lit> {
        loop {
            let v = self.order.pop(&self.activity)?;
            if self.value[v as usize] == 0 {
                return Some(lit(v, !self.phase[v as usize]));
            }
        }
    }

    /// Extract per-op issue times from a full satisfying assignment.
    fn extract(&self) -> Vec<i64> {
        (0..self.inst.n_ops)
            .map(|op| {
                let v = self
                    .inst
                    .vars_of_op(op)
                    .find(|&v| self.value[v as usize] == 1)
                    .expect("every op has a true slot in a model");
                self.inst.time_of[v as usize]
            })
            .collect()
    }

    /// Run CDCL until SAT, UNSAT, or budget exhaustion.
    pub(crate) fn solve(&mut self, budget: &SolveBudget, cancel: &CancelToken) -> SolveOutcome {
        if self.root_conflict {
            return SolveOutcome::Unsat;
        }
        let mut restart_count = 0u64;
        let mut conflicts_until_restart = LUBY_UNIT * luby(1);
        let mut since_poll = 0u64;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                if self.current_level() == 0 {
                    return SolveOutcome::Unsat;
                }
                let (learned, bj) = self.analyze(conflict);
                self.stats.learned_literals += learned.len() as u64;
                self.backtrack(bj);
                let assert_lit = learned[0];
                if learned.len() == 1 {
                    if !self.enqueue(assert_lit, Reason::Decision) {
                        return SolveOutcome::Unsat;
                    }
                } else {
                    let ci = self.clauses.len() as u32;
                    self.watches[learned[0] as usize].push(ci);
                    self.watches[learned[1] as usize].push(ci);
                    self.clauses.push(Clause { lits: learned });
                    if !self.enqueue(assert_lit, Reason::Clause(ci)) {
                        unreachable!("asserting literal is unassigned after backjump");
                    }
                }
                self.var_inc /= VAR_DECAY;
                if self.stats.conflicts >= budget.conflict_limit
                    || self.stats.propagations >= budget.propagation_limit
                {
                    return SolveOutcome::Unknown {
                        deadline_hit: false,
                    };
                }
                if cancel.is_cancelled() || budget.deadline.is_some_and(|d| Instant::now() >= d) {
                    return SolveOutcome::Unknown { deadline_hit: true };
                }
                if self.stats.conflicts >= conflicts_until_restart {
                    // Luby restart: back to the root, keep what we learned.
                    restart_count += 1;
                    self.stats.restarts += 1;
                    conflicts_until_restart =
                        self.stats.conflicts + LUBY_UNIT * luby(restart_count + 1);
                    self.backtrack(0);
                }
            } else {
                // Deterministic budget checks between conflicts too: a
                // satisfiable descent can propagate a great deal without
                // ever conflicting.
                if self.stats.propagations >= budget.propagation_limit {
                    return SolveOutcome::Unknown {
                        deadline_hit: false,
                    };
                }
                since_poll += 1;
                if since_poll >= 64 {
                    since_poll = 0;
                    if cancel.is_cancelled() || budget.deadline.is_some_and(|d| Instant::now() >= d)
                    {
                        return SolveOutcome::Unknown { deadline_hit: true };
                    }
                }
                match self.decide() {
                    None => return SolveOutcome::Sat(self.extract()),
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        if !self.enqueue(l, Reason::Decision) {
                            unreachable!("decision variable is unassigned");
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_prefix_is_canonical() {
        let want = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (1..=want.len() as u64).map(luby).collect();
        assert_eq!(got, want);
    }
}
