//! Root workspace package: see the `showdown` crate for the library API.
pub use showdown::*;
