//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the *minimal* `rand` surface it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] / [`Rng::gen_bool`]. The generator is SplitMix64 —
//! deterministic in the seed, which is all the kernel generator and the
//! property tests require. The streams differ from upstream `rand`'s
//! `StdRng` (ChaCha12), so seeds produce different loops than a
//! crates.io build would; every consumer in this repo only relies on
//! *within-repo* determinism, never on specific upstream streams.

/// Random number generators.
pub mod rngs {
    /// A deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

impl StdRng {
    pub(crate) fn next_u64_impl(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one
        // add + three xor-shift-multiplies per output.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Seedable generators (the only constructor this workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // Pre-scramble so that small consecutive seeds do not yield
        // correlated first outputs.
        let mut rng = StdRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        };
        let _ = rng.next_u64_impl();
        StdRng { state: rng.state }
    }
}

/// A type that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized + Copy {
    /// Draw uniformly from `[lo, hi)` given a 64-bit random word source.
    fn sample_range(lo: Self, hi: Self, draw: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),+ $(,)?) => {
        $(impl SampleUniform for $t {
            fn sample_range(lo: $t, hi: $t, draw: &mut dyn FnMut() -> u64) -> $t {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                // Multiply-shift bounded draw; the modulo bias over a
                // 64-bit source is immaterial for test workloads.
                let r = draw() % span;
                ((lo as $wide).wrapping_add(r as $wide)) as $t
            }
        })+
    };
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleUniform for f64 {
    fn sample_range(lo: f64, hi: f64, draw: &mut dyn FnMut() -> u64) -> f64 {
        assert!(lo < hi, "gen_range called with empty range");
        let unit = (draw() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * unit
    }
}

/// A range argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value from this range.
    fn sample(self, draw: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, draw: &mut dyn FnMut() -> u64) -> T {
        T::sample_range(self.start, self.end, draw)
    }
}

/// The user-facing generator interface.
pub trait Rng {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u: usize = rng.gen_range(0..7);
            assert!(u < 7);
            let i: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
