//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the macro/API surface its benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`criterion_group!`], and [`criterion_main!`].
//!
//! Instead of statistical sampling, each benchmark runs a warmup
//! iteration plus `sample_size` timed iterations and prints the mean and
//! min wall-clock per iteration — enough to eyeball regressions offline.
//! When the binary is invoked with `--test` (as `cargo test --benches`
//! does), every benchmark runs exactly one iteration as a smoke test.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; this harness has no time budget.
    pub fn measurement_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            group: name.to_owned(),
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<N: Into<String>, F>(&mut self, name: N, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, None, &name.into(), f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function<N: Into<String>, F>(&mut self, name: N, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group = self.group.clone();
        run_bench(self.criterion, Some(&group), &name.into(), f);
        self
    }

    /// Override the sample size for the rest of this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Close the group (no-op; for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    iters: usize,
}

impl Bencher {
    /// Time `routine`, recording one sample per configured iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let _warmup = black_box(routine());
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &mut Criterion, group: Option<&str>, name: &str, mut f: F) {
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_owned(),
    };
    let iters = if c.test_mode { 1 } else { c.sample_size };
    let mut b = Bencher {
        samples: Vec::with_capacity(iters),
        iters,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {label}: no samples (routine never called iter)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().expect("non-empty");
    println!(
        "bench {label}: mean {mean:?}, min {min:?} over {} iters",
        b.samples.len()
    );
}

/// Declare a group function invoking each target with a configured
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default().sample_size(3);
        c.test_mode = false;
        let mut calls = 0usize;
        let mut g = c.benchmark_group("g");
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        // 1 warmup + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion::default().sample_size(50);
        c.test_mode = true;
        let mut calls = 0usize;
        c.bench_function("once", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 2); // warmup + 1 sample
    }
}
