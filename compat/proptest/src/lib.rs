//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of proptest it uses: the [`proptest!`] test macro,
//! [`strategy::Strategy`] with `prop_map`, range and tuple strategies,
//! [`strategy::Just`], `prop_oneof!`, and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberate for an offline test shim:
//! - no shrinking — a failing case reports its inputs via the panic
//!   message (strategies are deterministic in the per-test seed, so a
//!   failure reproduces by re-running the test);
//! - no persistence — `*.proptest-regressions` files are ignored;
//! - sampling is driven by a fixed SplitMix64 stream seeded from the
//!   test name, so runs are reproducible across machines.

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// A failed property, produced by the `prop_assert*` macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Record a failure with the given message.
        pub fn fail(message: String) -> TestCaseError {
            TestCaseError(message)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic SplitMix64 stream driving strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed the stream from a test name, so every test draws an
        /// independent but reproducible sequence.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test inputs. Unlike upstream proptest there is no
    /// value tree and no shrinking: a strategy simply samples.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Sample one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among alternatives (the `prop_oneof!` engine).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty => $wide:ty),+ $(,)?) => {
            $(impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    let r = rng.next_u64() % span;
                    ((self.start as $wide).wrapping_add(r as $wide)) as $t
                }
            })+
        };
    }

    impl_range_strategy!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    );

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {}: case {}/{} failed: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fallible assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fallible equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Fallible inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: both sides equal `{:?}`",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.1f64..0.6).generate(&mut rng);
            assert!((0.1..0.6).contains(&f));
        }
    }

    #[test]
    fn union_picks_every_option() {
        let mut rng = TestRng::from_name("union");
        let u = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(u.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::from_name("map");
        let s = (1u32..5, 10u64..20).prop_map(|(a, b)| u64::from(a) + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((11..24).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_cases(x in 0u32..10, (a, b) in (0i64..5, 0i64..5)) {
            prop_assert!(x < 10);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a - 1, a);
        }
    }

    #[test]
    #[should_panic(expected = "case 1/4 failed")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
